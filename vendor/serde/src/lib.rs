//! Vendored offline stub of `serde`.
//!
//! The build environment has no registry access, so the workspace patches
//! `crates-io` to this crate. It keeps the user-facing surface this
//! workspace relies on — `#[derive(Serialize, Deserialize)]` plus the
//! `serde_json` functions — but swaps serde's visitor machinery for a much
//! smaller JSON-shaped data model: serializing converts to a [`Value`]
//! tree, deserializing converts back. `serde_json` (also vendored) is the
//! only consumer, so nothing outside that pairing is needed.
//!
//! Determinism: object members preserve insertion order ([`Map`] is a
//! `Vec`-backed ordered map), so deriving `Serialize` yields fields in
//! declaration order and repeated runs produce byte-identical JSON.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

pub mod value;

pub use value::{Map, Value};

/// Serialization/deserialization error.
#[derive(Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.msg)
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to the JSON-shaped data model.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`; errors carry a human-readable path-less message.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers
// ---------------------------------------------------------------------------

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Map keys must render as JSON strings. Integer keys follow serde_json's
/// convention of stringifying.
pub trait SerKey {
    /// The key's JSON string form.
    fn to_key(&self) -> String;
    /// Parses a key back from its string form.
    fn from_key(s: &str) -> Result<Self, Error>
    where
        Self: Sized;
}

impl SerKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! key_int {
    ($($t:ty),*) => {$(
        impl SerKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::custom(format!("invalid integer key: {s:?}")))
            }
        }
    )*};
}
key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: SerKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.to_key(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<K: SerKey + Ord + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort keys so HashMap iteration order can never leak into output:
        // exported JSON must be byte-identical across runs.
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        let mut m = Map::new();
        for (k, v) in pairs {
            m.insert(k.to_key(), v.to_value());
        }
        Value::Object(m)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let out = match *v {
                    Value::U64(n) => <$t>::try_from(n).ok(),
                    Value::I64(n) => <$t>::try_from(n).ok(),
                    Value::F64(n) if n.fract() == 0.0 && n.abs() < 9.0e18 => {
                        <$t>::try_from(n as i64).ok()
                    }
                    _ => None,
                };
                out.ok_or_else(|| {
                    Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {}"),
                        v.kind()
                    ))
                })
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(n) => Ok(n),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::custom(format!("expected f64, got {}", v.kind()))),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom(format!("expected bool, got {}", v.kind()))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom(format!("expected string, got {}", v.kind()))),
        }
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom(format!("expected array, got {}", v.kind()))),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    _ => Err(Error::custom(concat!(
                        "expected array of length ",
                        stringify!($len)
                    ))),
                }
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl<K: SerKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom(format!("expected object, got {}", v.kind()))),
        }
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: SerKey + Eq + std::hash::Hash,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom(format!("expected object, got {}", v.kind()))),
        }
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
