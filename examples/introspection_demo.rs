//! The IBMon trick, step by step — no full platform, just the substrates.
//!
//! Walks through exactly what makes ResEx possible on VMM-bypass hardware:
//!
//! 1. A guest VM owns a completion queue whose ring lives in *its own*
//!    memory; the hypervisor never sees its I/O verbs.
//! 2. The (simulated) HCA DMA-writes a CQE into that ring for every
//!    completed transfer.
//! 3. dom0 maps the guest's ring pages with `xc_map_foreign_range` and
//!    diffs successive scans — recovering completion counts, byte volumes,
//!    MTU counts, and even the application's buffer size, all without any
//!    cooperation from the guest.
//! 4. When the guest outruns the monitor (ring wraps between polls), the
//!    wrapping per-work-queue counter still yields an exact count — the
//!    scan is marked *aliased* and per-slot data is rescaled.
//!
//! ```text
//! cargo run --release --example introspection_demo
//! ```

use resex_fabric::qp::{RecvRequest, WorkRequest};
use resex_fabric::{Access, Fabric, Opcode};
use resex_hypervisor::{Hypervisor, SchedModel};
use resex_ibmon::{IbMon, IbMonConfig};
use resex_obs::{export_chrome_trace, EventKind, Tracer};
use resex_simcore::time::{SimDuration, SimTime};
use resex_simmem::MemoryHandle;

fn main() {
    // -- a hypervisor with dom0 and one guest ---------------------------
    let mut hv = Hypervisor::new(SchedModel::Fluid);
    hv.add_pcpu();
    let dom0 = hv.create_domain("dom0", 8 << 20, true);
    let guest = hv.create_domain("guest", 32 << 20, false);
    let gmem = hv.domain_memory(guest).unwrap();

    // -- the guest sets up its RDMA resources (bypassing the hypervisor) --
    // A memory tracer records what the fabric does; at the end we export
    // it as a Chrome trace (the full platform does the same via
    // `ScenarioConfig::obs` / the simulate binary's --trace flag).
    let tracer = Tracer::memory();
    let mut fabric = Fabric::with_defaults();
    fabric.set_tracer(tracer.clone());
    let n0 = fabric.add_node();
    let n1 = fabric.add_node();
    let pd = fabric.create_pd(n0).unwrap();
    let uar = fabric.create_uar(n0, &gmem).unwrap();
    let send_cq = fabric.create_cq(n0, &gmem, 32).unwrap();
    let recv_cq = fabric.create_cq(n0, &gmem, 32).unwrap();
    let qp = fabric
        .create_qp(n0, pd, send_cq, recv_cq, 64, 64, uar)
        .unwrap();
    let buf = gmem.alloc_bytes(256 * 1024).unwrap();
    let mr = fabric
        .register_mr(n0, pd, &gmem, buf, 256 * 1024, Access::FULL)
        .unwrap();

    // A peer to receive the traffic.
    let pmem = MemoryHandle::new(16 << 20);
    let ppd = fabric.create_pd(n1).unwrap();
    let puar = fabric.create_uar(n1, &pmem).unwrap();
    let pscq = fabric.create_cq(n1, &pmem, 32).unwrap();
    let prcq = fabric.create_cq(n1, &pmem, 32).unwrap();
    let pqp = fabric.create_qp(n1, ppd, pscq, prcq, 64, 64, puar).unwrap();
    let pbuf = pmem.alloc_bytes(256 * 1024).unwrap();
    let pmr = fabric
        .register_mr(n1, ppd, &pmem, pbuf, 256 * 1024, Access::FULL)
        .unwrap();
    fabric.connect(n0, qp, n1, pqp).unwrap();
    for slot in 0..32u64 {
        fabric
            .post_recv(
                n1,
                pqp,
                RecvRequest {
                    wr_id: slot,
                    lkey: pmr.lkey,
                    gpa: pbuf,
                    len: 256 * 1024,
                },
            )
            .unwrap();
    }

    // -- dom0 maps the guest's send-CQ ring and starts watching ----------
    let (ring, capacity) = fabric.cq_ring_info(n0, send_cq).unwrap();
    println!("guest send-CQ ring: {capacity} CQEs at guest-physical {ring}");
    let mut ibmon = IbMon::new(IbMonConfig::default());
    ibmon.watch_cq(&hv, dom0, guest, ring, capacity).unwrap();
    ibmon.sample_vm(guest, SimTime::ZERO).unwrap(); // priming scan
    println!("dom0 mapped the ring via xc_map_foreign_range and primed the scanner\n");

    // -- the guest sends; dom0 samples once per millisecond --------------
    let mut now = SimTime::ZERO;
    let mut wr_id = 0u64;
    println!(
        "{:>6} {:>8} {:>12} {:>10} {:>12} {:>8}",
        "t(ms)", "compl", "bytes", "MTUs", "est. buffer", "aliased"
    );
    for interval in 1..=6u64 {
        // Sends per interval double each time; at 6 it outruns the ring.
        let sends = 1u64 << interval;
        for _ in 0..sends {
            fabric
                .post_send(
                    n0,
                    qp,
                    WorkRequest {
                        wr_id,
                        opcode: Opcode::Send,
                        lkey: mr.lkey,
                        local_gpa: buf,
                        len: 64 * 1024,
                        remote: None,
                        imm: 0,
                        signaled: true,
                    },
                    now,
                )
                .unwrap();
            wr_id += 1;
            // Drive the fabric until this message completes, and poll the
            // CQs like a real application would.
            while let Some(t) = fabric.next_time() {
                fabric.advance(t);
                now = t;
            }
            let _ = fabric.poll_cq(n0, send_cq, 64).unwrap();
            let _ = fabric.poll_cq(n1, prcq, 64).unwrap();
            // Re-post the consumed receive.
            fabric
                .post_recv(
                    n1,
                    pqp,
                    RecvRequest {
                        wr_id: 0,
                        lkey: pmr.lkey,
                        gpa: pbuf,
                        len: 256 * 1024,
                    },
                )
                .unwrap();
        }
        now += SimDuration::from_millis(1);
        let usage = ibmon.sample_vm(guest, now).unwrap();
        println!(
            "{:>6} {:>8} {:>12} {:>10} {:>10}KB {:>8}",
            interval,
            usage.completions,
            usage.bytes,
            usage.mtus,
            (usage.est_buffer_size / 1024.0).round(),
            if usage.aliased { "yes" } else { "no" }
        );
    }

    let truth = fabric.qp_counters(n0, qp).unwrap();
    println!(
        "\nground truth: {} MTUs sent — IBMon estimated {} ({:+.2}%)",
        truth.mtus_sent,
        ibmon.lifetime_mtus(guest),
        100.0 * (ibmon.lifetime_mtus(guest) as f64 - truth.mtus_sent as f64)
            / truth.mtus_sent as f64
    );
    println!(
        "(the guest never told anyone its buffer size; dom0 inferred ~64KB \
         from bytes/completion)"
    );

    // -- every fabric action above was also traced ----------------------
    tracer.set_vm_label(0, "guest");
    tracer.map_qp_to_vm(qp.raw(), 0);
    let (events, entities) = tracer.take_events();
    let grants = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Complete(_)) && e.name == "grant")
        .count();
    let json = export_chrome_trace(&events, &entities);
    println!(
        "\ntracing: {} events recorded ({} link-arbiter grant spans); \
         Chrome trace export is {} bytes —",
        events.len(),
        grants,
        json.len()
    );
    println!("write it to a file and load it in ui.perfetto.dev or chrome://tracing.");
}
