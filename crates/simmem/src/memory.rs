//! Guest physical address spaces.

use crate::error::MemError;
use parking_lot::RwLock;
use std::fmt;
use std::sync::Arc;

/// Size of a guest page, matching x86 and the 4 KiB UAR pages of the paper's
/// InfiniBand HCAs.
pub const PAGE_SIZE: usize = 4096;

/// A guest-physical address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gpa(u64);

impl Gpa {
    /// Wraps a raw address.
    #[inline]
    pub const fn new(addr: u64) -> Self {
        Gpa(addr)
    }

    /// The raw address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The page frame number containing this address.
    #[inline]
    pub const fn frame(self) -> u64 {
        self.0 / PAGE_SIZE as u64
    }

    /// Offset within the containing page.
    #[inline]
    pub const fn page_offset(self) -> usize {
        (self.0 % PAGE_SIZE as u64) as usize
    }

    /// The address `bytes` past this one.
    #[inline]
    pub const fn add(self, bytes: u64) -> Gpa {
        Gpa(self.0 + bytes)
    }

    /// True if this address is page-aligned.
    #[inline]
    pub const fn is_page_aligned(self) -> bool {
        self.0.is_multiple_of(PAGE_SIZE as u64)
    }
}

impl fmt::Debug for Gpa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gpa({:#x})", self.0)
    }
}

impl fmt::Display for Gpa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

struct PageState {
    data: Option<Box<[u8; PAGE_SIZE]>>,
    pin_count: u32,
}

impl PageState {
    const fn empty() -> Self {
        PageState {
            data: None,
            pin_count: 0,
        }
    }
}

/// A single domain's guest-physical memory.
///
/// Pages are materialized lazily on first write (reads of untouched pages
/// return zeros, like freshly ballooned memory). A simple bump allocator
/// hands out page-aligned regions for application buffers and queue rings.
pub struct GuestMemory {
    pages: Vec<PageState>,
    alloc_next: u64,
}

impl GuestMemory {
    /// Creates an address space of `size_bytes` (rounded up to whole pages).
    pub fn new(size_bytes: u64) -> Self {
        let n = (size_bytes as usize).div_ceil(PAGE_SIZE);
        let mut pages = Vec::with_capacity(n);
        pages.resize_with(n, PageState::empty);
        GuestMemory {
            pages,
            alloc_next: 0,
        }
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        (self.pages.len() * PAGE_SIZE) as u64
    }

    /// Number of pages currently materialized (backed by real storage).
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.data.is_some()).count()
    }

    fn check_range(&self, gpa: Gpa, len: usize) -> Result<(), MemError> {
        let end = gpa.raw().checked_add(len as u64);
        match end {
            Some(end) if end <= self.size() => Ok(()),
            _ => Err(MemError::OutOfBounds {
                gpa,
                len,
                size: self.size(),
            }),
        }
    }

    /// Allocates `n_pages` contiguous pages; returns the base address.
    pub fn alloc_pages(&mut self, n_pages: u64) -> Result<Gpa, MemError> {
        let total = self.pages.len() as u64;
        let free = total - self.alloc_next;
        if n_pages > free {
            return Err(MemError::OutOfMemory {
                requested_pages: n_pages,
                available_pages: free,
            });
        }
        let base = Gpa::new(self.alloc_next * PAGE_SIZE as u64);
        self.alloc_next += n_pages;
        Ok(base)
    }

    /// Allocates enough pages to hold `bytes`; returns the page-aligned base.
    pub fn alloc_bytes(&mut self, bytes: u64) -> Result<Gpa, MemError> {
        self.alloc_pages(bytes.div_ceil(PAGE_SIZE as u64).max(1))
    }

    /// Reads `buf.len()` bytes starting at `gpa`.
    pub fn read(&self, gpa: Gpa, buf: &mut [u8]) -> Result<(), MemError> {
        self.check_range(gpa, buf.len())?;
        let mut addr = gpa.raw();
        let mut done = 0;
        while done < buf.len() {
            let frame = (addr / PAGE_SIZE as u64) as usize;
            let off = (addr % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - off).min(buf.len() - done);
            match &self.pages[frame].data {
                Some(p) => buf[done..done + n].copy_from_slice(&p[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
            addr += n as u64;
        }
        Ok(())
    }

    /// Writes `buf` starting at `gpa`, materializing pages as needed.
    pub fn write(&mut self, gpa: Gpa, buf: &[u8]) -> Result<(), MemError> {
        self.check_range(gpa, buf.len())?;
        let mut addr = gpa.raw();
        let mut done = 0;
        while done < buf.len() {
            let frame = (addr / PAGE_SIZE as u64) as usize;
            let off = (addr % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - off).min(buf.len() - done);
            let page = self.pages[frame]
                .data
                .get_or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            page[off..off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
            addr += n as u64;
        }
        Ok(())
    }

    /// Reads a little-endian `u32` at `gpa`.
    pub fn read_u32(&self, gpa: Gpa) -> Result<u32, MemError> {
        let mut b = [0u8; 4];
        self.read(gpa, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Writes a little-endian `u32` at `gpa`.
    pub fn write_u32(&mut self, gpa: Gpa, v: u32) -> Result<(), MemError> {
        self.write(gpa, &v.to_le_bytes())
    }

    /// Reads a little-endian `u64` at `gpa`.
    pub fn read_u64(&self, gpa: Gpa) -> Result<u64, MemError> {
        let mut b = [0u8; 8];
        self.read(gpa, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64` at `gpa`.
    pub fn write_u64(&mut self, gpa: Gpa, v: u64) -> Result<(), MemError> {
        self.write(gpa, &v.to_le_bytes())
    }

    /// Pins every page overlapping `[gpa, gpa+len)` (registration-time
    /// behaviour of RDMA memory regions). Pins nest: each `pin_range` must be
    /// balanced by one `unpin_range`.
    pub fn pin_range(&mut self, gpa: Gpa, len: usize) -> Result<(), MemError> {
        self.check_range(gpa, len)?;
        let first = gpa.frame();
        let last = gpa.add(len.saturating_sub(1) as u64).frame();
        for frame in first..=last {
            self.pages[frame as usize].pin_count += 1;
            // Pinned pages must be resident: the HCA will DMA into them.
            self.pages[frame as usize]
                .data
                .get_or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        }
        Ok(())
    }

    /// Reverses one [`GuestMemory::pin_range`] call for the same range.
    pub fn unpin_range(&mut self, gpa: Gpa, len: usize) -> Result<(), MemError> {
        self.check_range(gpa, len)?;
        let first = gpa.frame();
        let last = gpa.add(len.saturating_sub(1) as u64).frame();
        // Validate first so the operation is atomic.
        for frame in first..=last {
            if self.pages[frame as usize].pin_count == 0 {
                return Err(MemError::NotPinnedForUnpin {
                    page_base: Gpa::new(frame * PAGE_SIZE as u64),
                });
            }
        }
        for frame in first..=last {
            self.pages[frame as usize].pin_count -= 1;
        }
        Ok(())
    }

    /// True if every page of `[gpa, gpa+len)` is pinned.
    pub fn is_pinned(&self, gpa: Gpa, len: usize) -> bool {
        if self.check_range(gpa, len).is_err() {
            return false;
        }
        let first = gpa.frame();
        let last = gpa.add(len.saturating_sub(1) as u64).frame();
        (first..=last).all(|f| self.pages[f as usize].pin_count > 0)
    }
}

/// A cloneable, thread-safe handle to one domain's [`GuestMemory`].
#[derive(Clone)]
pub struct MemoryHandle {
    inner: Arc<RwLock<GuestMemory>>,
}

impl MemoryHandle {
    /// Creates a fresh address space of `size_bytes`.
    pub fn new(size_bytes: u64) -> Self {
        MemoryHandle {
            inner: Arc::new(RwLock::new(GuestMemory::new(size_bytes))),
        }
    }

    /// Runs `f` with shared (read) access.
    pub fn with_read<R>(&self, f: impl FnOnce(&GuestMemory) -> R) -> R {
        f(&self.inner.read())
    }

    /// Runs `f` with exclusive (write) access.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut GuestMemory) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Allocates a page-aligned region of at least `bytes` bytes.
    pub fn alloc_bytes(&self, bytes: u64) -> Result<Gpa, MemError> {
        self.with_write(|m| m.alloc_bytes(bytes))
    }

    /// Guest-visible read.
    pub fn read(&self, gpa: Gpa, buf: &mut [u8]) -> Result<(), MemError> {
        self.with_read(|m| m.read(gpa, buf))
    }

    /// Guest-visible write.
    pub fn write(&self, gpa: Gpa, buf: &[u8]) -> Result<(), MemError> {
        self.with_write(|m| m.write(gpa, buf))
    }

    /// Device DMA write: identical to [`MemoryHandle::write`] but enforces
    /// that the whole target range is pinned, as a real HCA's IOMMU/TPT would.
    pub fn dma_write(&self, gpa: Gpa, buf: &[u8]) -> Result<(), MemError> {
        self.with_write(|m| {
            m.check_range(gpa, buf.len())?;
            if !m.is_pinned(gpa, buf.len()) {
                let first_unpinned = (gpa.frame()..=gpa.add(buf.len() as u64 - 1).frame())
                    .find(|&f| m.pages[f as usize].pin_count == 0)
                    .unwrap_or(gpa.frame());
                return Err(MemError::NotPinned {
                    page_base: Gpa::new(first_unpinned * PAGE_SIZE as u64),
                });
            }
            m.write(gpa, buf)
        })
    }

    /// Device DMA read with the same pinning requirement.
    pub fn dma_read(&self, gpa: Gpa, buf: &mut [u8]) -> Result<(), MemError> {
        self.with_read(|m| {
            m.check_range(gpa, buf.len())?;
            if !m.is_pinned(gpa, buf.len()) {
                return Err(MemError::NotPinned {
                    page_base: Gpa::new(gpa.frame() * PAGE_SIZE as u64),
                });
            }
            m.read(gpa, buf)
        })
    }

    /// Total size in bytes.
    pub fn size(&self) -> u64 {
        self.with_read(|m| m.size())
    }

    /// Clones the underlying `Arc` — used by [`crate::ForeignMapping`].
    pub(crate) fn share(&self) -> Arc<RwLock<GuestMemory>> {
        Arc::clone(&self.inner)
    }
}

impl fmt::Debug for MemoryHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MemoryHandle({} bytes)", self.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpa_geometry() {
        let g = Gpa::new(4096 * 3 + 17);
        assert_eq!(g.frame(), 3);
        assert_eq!(g.page_offset(), 17);
        assert!(!g.is_page_aligned());
        assert!(Gpa::new(8192).is_page_aligned());
        assert_eq!(g.add(10).raw(), 4096 * 3 + 27);
    }

    #[test]
    fn read_of_untouched_memory_is_zero() {
        let m = GuestMemory::new(64 * 1024);
        let mut buf = [0xFFu8; 16];
        m.read(Gpa::new(1000), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip_across_page_boundary() {
        let mut m = GuestMemory::new(64 * 1024);
        let data: Vec<u8> = (0..=255).collect();
        let gpa = Gpa::new(PAGE_SIZE as u64 - 100);
        m.write(gpa, &data).unwrap();
        let mut out = vec![0u8; 256];
        m.read(gpa, &mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(m.resident_pages(), 2, "write spans two pages");
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let mut m = GuestMemory::new(8192);
        assert!(matches!(
            m.write(Gpa::new(8190), &[0; 4]),
            Err(MemError::OutOfBounds { .. })
        ));
        let mut b = [0u8; 1];
        assert!(m.read(Gpa::new(8192), &mut b).is_err());
        // End-of-space access of exact length is fine.
        assert!(m.write(Gpa::new(8188), &[1, 2, 3, 4]).is_ok());
    }

    #[test]
    fn scalar_accessors_are_little_endian() {
        let mut m = GuestMemory::new(4096);
        m.write_u32(Gpa::new(0), 0x1234_5678).unwrap();
        let mut b = [0u8; 4];
        m.read(Gpa::new(0), &mut b).unwrap();
        assert_eq!(b, [0x78, 0x56, 0x34, 0x12]);
        assert_eq!(m.read_u32(Gpa::new(0)).unwrap(), 0x1234_5678);
        m.write_u64(Gpa::new(8), u64::MAX - 1).unwrap();
        assert_eq!(m.read_u64(Gpa::new(8)).unwrap(), u64::MAX - 1);
    }

    #[test]
    fn allocator_hands_out_disjoint_regions() {
        let mut m = GuestMemory::new(10 * PAGE_SIZE as u64);
        let a = m.alloc_pages(2).unwrap();
        let b = m.alloc_pages(3).unwrap();
        assert_eq!(a, Gpa::new(0));
        assert_eq!(b, Gpa::new(2 * PAGE_SIZE as u64));
        let err = m.alloc_pages(100).unwrap_err();
        assert!(matches!(
            err,
            MemError::OutOfMemory {
                available_pages: 5,
                ..
            }
        ));
    }

    #[test]
    fn alloc_bytes_rounds_up() {
        let mut m = GuestMemory::new(10 * PAGE_SIZE as u64);
        let a = m.alloc_bytes(1).unwrap();
        let b = m.alloc_bytes(PAGE_SIZE as u64 + 1).unwrap();
        assert_eq!(b.raw() - a.raw(), PAGE_SIZE as u64);
        let c = m.alloc_bytes(10).unwrap();
        assert_eq!(c.raw() - b.raw(), 2 * PAGE_SIZE as u64);
    }

    #[test]
    fn pinning_nests_and_unpin_validates() {
        let mut m = GuestMemory::new(4 * PAGE_SIZE as u64);
        let gpa = Gpa::new(100);
        m.pin_range(gpa, 5000).unwrap(); // spans pages 0 and 1
        m.pin_range(gpa, 100).unwrap(); // pins page 0 again
        assert!(m.is_pinned(gpa, 5000));
        m.unpin_range(gpa, 5000).unwrap();
        assert!(m.is_pinned(gpa, 100), "page 0 still pinned once");
        assert!(!m.is_pinned(gpa, 5000), "page 1 fully unpinned");
        m.unpin_range(gpa, 100).unwrap();
        assert!(matches!(
            m.unpin_range(gpa, 100),
            Err(MemError::NotPinnedForUnpin { .. })
        ));
    }

    #[test]
    fn dma_requires_pinning() {
        let h = MemoryHandle::new(64 * 1024);
        let gpa = Gpa::new(0);
        assert!(matches!(
            h.dma_write(gpa, &[1, 2, 3]),
            Err(MemError::NotPinned { .. })
        ));
        h.with_write(|m| m.pin_range(gpa, 3)).unwrap();
        h.dma_write(gpa, &[1, 2, 3]).unwrap();
        let mut out = [0u8; 3];
        h.dma_read(gpa, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3]);
    }

    #[test]
    fn dma_partial_pin_is_rejected() {
        let h = MemoryHandle::new(64 * 1024);
        // Pin only the first page, then DMA across into the second.
        h.with_write(|m| m.pin_range(Gpa::new(0), PAGE_SIZE))
            .unwrap();
        let err = h
            .dma_write(Gpa::new(PAGE_SIZE as u64 - 2), &[0u8; 8])
            .unwrap_err();
        assert!(matches!(err, MemError::NotPinned { page_base } if page_base.frame() == 1));
    }

    #[test]
    fn handle_is_shared() {
        let h = MemoryHandle::new(4096);
        let h2 = h.clone();
        h.write(Gpa::new(10), &[42]).unwrap();
        let mut b = [0u8; 1];
        h2.read(Gpa::new(10), &mut b).unwrap();
        assert_eq!(b[0], 42);
    }

    #[test]
    fn pinned_pages_become_resident() {
        let mut m = GuestMemory::new(8 * PAGE_SIZE as u64);
        assert_eq!(m.resident_pages(), 0);
        m.pin_range(Gpa::new(0), 2 * PAGE_SIZE).unwrap();
        assert_eq!(m.resident_pages(), 2);
    }
}
