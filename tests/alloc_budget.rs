//! Allocation budget for the hot path.
//!
//! The batched fabric hot path is supposed to be allocation-free in
//! steady state: payload buffers come from the pool, event drains reuse
//! caller-owned scratch, and the calendar recycles its slots. This test
//! installs the counting allocator and holds the whole simulation to a
//! hard budget of **0.5 allocations per event** — an order of magnitude
//! above steady-state reality (the committed profile measures ~0.05), so
//! it only trips when someone reintroduces a per-event allocation, not
//! on setup-cost noise. It must pass in debug builds: the budget counts
//! allocator calls, not cycles.

use resex_platform::{run_scenario, PolicyKind, ScenarioConfig};
use resex_simcore::time::SimDuration;

#[global_allocator]
static ALLOC: resex_obs::alloc::CountingAlloc = resex_obs::alloc::CountingAlloc;

/// A small fig9-style managed contention scenario: two VMs, FreeMarket,
/// caps actuating — the same workload shape the figure sweeps, shrunk to
/// a fraction of a simulated second.
fn budget_cfg() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::managed(1024 * 1024, PolicyKind::FreeMarket);
    cfg.duration = SimDuration::from_millis(400);
    cfg.warmup = SimDuration::from_millis(50);
    cfg
}

#[test]
fn hot_path_stays_under_half_an_allocation_per_event() {
    // First run warms every lazy structure (pool buffers, scratch
    // capacity, interned names) so the measured run sees steady state
    // plus one world construction — which the budget must still absorb.
    run_scenario(budget_cfg());

    let (before, _) = resex_obs::alloc::thread_counters();
    let run = run_scenario(budget_cfg());
    let (after, _) = resex_obs::alloc::thread_counters();

    let allocs = after.wrapping_sub(before);
    let events = run.events_processed;
    assert!(events > 10_000, "scenario too small to measure: {events}");
    let per_event = allocs as f64 / events as f64;
    assert!(
        per_event < 0.5,
        "hot path regressed to {per_event:.3} allocs/event \
         ({allocs} allocations over {events} events)"
    );
}
