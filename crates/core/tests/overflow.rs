//! Property tests: no configuration can mint currency via integer
//! overflow. Reso arithmetic saturates at the `i64` milli-Reso extremes,
//! so a huge allocation or charge can peg at the maximum — it can never
//! wrap around and hand a VM a negative (i.e. freshly minted positive,
//! after a debit) balance.

use proptest::prelude::*;
use resex_core::Resos;

proptest! {
    /// `from_whole` never flips sign, however large the epoch allocation.
    #[test]
    fn from_whole_preserves_sign(n in any::<i64>()) {
        let r = Resos::from_whole(n);
        prop_assert_eq!(r.as_milli() >= 0, n >= 0, "n={} -> {}", n, r.as_milli());
    }

    /// Adding to a balance never decreases it when the addend is
    /// non-negative (wrapping addition violated this for large balances).
    #[test]
    fn add_is_monotone(a in any::<i64>(), b in 0i64..i64::MAX) {
        let sum = Resos::from_milli(a) + Resos::from_milli(b);
        prop_assert!(sum >= Resos::from_milli(a), "a={a} b={b} sum={:?}", sum);
    }

    /// Charging (subtracting a non-negative amount) never increases the
    /// balance — the wrap that would "mint" currency is impossible.
    #[test]
    fn charges_never_mint(balance in any::<i64>(), debit in 0i64..i64::MAX) {
        let after = Resos::from_milli(balance) - Resos::from_milli(debit);
        prop_assert!(
            after <= Resos::from_milli(balance),
            "balance={balance} debit={debit} after={:?}",
            after
        );
    }

    /// `Resos::charge` output is always non-negative for valid inputs,
    /// even when the product blows past the representable range.
    #[test]
    fn charge_output_is_non_negative(units in 0.0f64..1e18, rate in 0.0f64..1e6) {
        // Stay below the debug assertion's threshold in debug builds; the
        // saturation path itself is covered by the unit tests.
        if cfg!(debug_assertions) && units * rate * 1000.0 >= i64::MAX as f64 {
            return Ok(());
        }
        let c = Resos::charge(units, rate);
        prop_assert!(c >= Resos::ZERO, "charge({units}, {rate}) = {:?}", c);
    }

    /// Round-trip identity where no saturation occurs: `(a + b) - b == a`.
    #[test]
    fn add_sub_round_trips_in_range(a in -1_000_000_000i64..1_000_000_000,
                                    b in -1_000_000_000i64..1_000_000_000) {
        let (ra, rb) = (Resos::from_milli(a), Resos::from_milli(b));
        prop_assert_eq!((ra + rb) - rb, ra);
    }
}
