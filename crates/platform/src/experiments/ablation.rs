//! Ablations over the reproduction's own design choices.
//!
//! These are not paper figures; they bound how much each simulator
//! idealization matters, as promised in DESIGN.md:
//!
//! * **Link grant granularity** — the arbiter serves queue pairs in grants
//!   of N MTUs; N=1 is exact per-packet round-robin.
//! * **Scheduler model** — continuous fluid shares vs literal 10 ms
//!   run/idle slices.
//! * **Charging interval** — the paper's 1 ms vs coarser loops.
//! * **SLA threshold** — IOShares' sensitivity knob.
//! * **Hardware jitter** — optional timing noise standing in for the
//!   PCIe/DMA/cache effects real testbeds exhibit.
//! * **Depletion mode** — the paper's gradual cap walk-down vs the
//!   hard-stop and balance-proportional alternatives it alludes to.

use crate::experiments::{mean_std, Scale};
use crate::scenario::{PolicyKind, ScenarioConfig};
use crate::world::run_scenario;
use rayon::prelude::*;
use resex_core::DepletionMode;
use resex_hypervisor::SchedModel;
use resex_simcore::time::SimDuration;
use serde::Serialize;

/// One ablation data point.
#[derive(Clone, Debug, Serialize)]
pub struct AblationRow {
    /// Which knob was turned.
    pub knob: String,
    /// The knob's value.
    pub value: String,
    /// Reporter mean latency, µs.
    pub total_us: f64,
    /// Reporter latency std, µs.
    pub std_us: f64,
}

/// The full ablation table.
#[derive(Clone, Debug, Serialize)]
pub struct AblationResult {
    /// All data points, grouped by knob.
    pub rows: Vec<AblationRow>,
}

fn managed(scale: &Scale) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::managed(2 * 1024 * 1024, PolicyKind::IoShares);
    cfg.duration = scale.duration;
    cfg.warmup = scale.warmup;
    scale.stamp_faults(&mut cfg);
    scale.stamp_adversary(&mut cfg);
    cfg
}

/// Runs every ablation point (in parallel).
pub fn run(scale: &Scale) -> AblationResult {
    let mut cases: Vec<(String, String, ScenarioConfig)> = Vec::new();

    for grant in [1u32, 4, 16, 64] {
        let mut cfg = managed(scale);
        cfg.fabric.grant_mtus = grant;
        cases.push(("grant_mtus".into(), grant.to_string(), cfg));
    }
    for (name, model) in [
        ("fluid", SchedModel::Fluid),
        (
            "slice-10ms",
            SchedModel::Slice {
                period: SimDuration::from_millis(10),
            },
        ),
    ] {
        let mut cfg = managed(scale);
        cfg.sched = model;
        cases.push(("sched_model".into(), name.into(), cfg));
    }
    for interval_ms in [1u64, 5, 20] {
        let mut cfg = managed(scale);
        cfg.resex.interval = SimDuration::from_millis(interval_ms);
        cases.push(("interval".into(), format!("{interval_ms}ms"), cfg));
    }
    for sla in [5.0f64, 10.0, 25.0] {
        let mut cfg = managed(scale);
        cfg.resex.sla_threshold_pct = sla;
        cases.push(("sla_threshold".into(), format!("{sla}%"), cfg));
    }
    for jitter in [0.0f64, 0.02, 0.05] {
        let mut cfg = managed(scale);
        cfg.fabric.hw_jitter = jitter;
        cases.push(("hw_jitter".into(), format!("{:.0}%", jitter * 100.0), cfg));
    }
    for (name, mode) in [
        ("gradual", DepletionMode::Gradual),
        ("hardstop", DepletionMode::HardStop),
        ("proportional", DepletionMode::Proportional),
    ] {
        // Depletion modes matter under FreeMarket, where depletion is the
        // only throttle.
        let mut cfg = ScenarioConfig::managed(2 * 1024 * 1024, PolicyKind::FreeMarket);
        cfg.duration = scale.duration;
        cfg.warmup = scale.warmup;
        scale.stamp_faults(&mut cfg);
        scale.stamp_adversary(&mut cfg);
        cfg.resex.depletion = mode;
        cases.push(("depletion".into(), name.into(), cfg));
    }

    let rows = cases
        .into_par_iter()
        .map(|(knob, value, cfg)| {
            let run = run_scenario(cfg);
            let (mean, std) = mean_std(&run, "64KB");
            AblationRow {
                knob,
                value,
                total_us: mean,
                std_us: std,
            }
        })
        .collect();
    AblationResult { rows }
}

impl AblationResult {
    /// Prints the table.
    pub fn print(&self) {
        println!("Ablations — sensitivity of the IOShares result to simulator choices");
        println!(
            "\n  {:<14} {:>10} {:>10} {:>8}",
            "knob", "value", "mean µs", "std µs"
        );
        let mut last_knob = String::new();
        for r in &self.rows {
            if r.knob != last_knob {
                println!("  {}", "-".repeat(46));
                last_knob = r.knob.clone();
            }
            println!(
                "  {:<14} {:>10} {:>10.1} {:>8.1}",
                r.knob, r.value, r.total_us, r.std_us
            );
        }
    }
}
