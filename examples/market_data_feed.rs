//! Multicast market data under interference — the other half of an
//! exchange's traffic.
//!
//! BenchEx models the *transactional* path (RC request/response). Real
//! exchanges also publish market data over UD multicast: one publisher,
//! many subscribers, no retransmits — a late tick is a worthless tick.
//! This example uses the fabric directly to show:
//!
//! 1. a publisher multicasting 512-byte ticks to three subscriber hosts,
//! 2. the tick latency distribution when the publisher host is quiet,
//! 3. the same feed while a bulk RDMA stream shares the publisher's egress
//!    link, and
//! 4. the feed protected by an HCA priority level — the hardware analogue
//!    of what ResEx achieves with CPU caps on the transactional path.
//!
//! ```text
//! cargo run --release --example market_data_feed
//! ```

use resex_fabric::link::FlowParams;
use resex_fabric::qp::{RecvRequest, WorkRequest};
use resex_fabric::{Access, Fabric, FabricEvent, NodeId, Opcode, RemoteTarget};
use resex_simcore::stats::OnlineStats;
use resex_simcore::time::{SimDuration, SimTime};
use resex_simmem::MemoryHandle;

const TICKS: usize = 400;
const TICK_BYTES: u32 = 512;
const TICK_INTERVAL: SimDuration = SimDuration::from_micros(250); // 4k ticks/s

#[allow(dead_code)] // keeps subscriber handles alive for the whole feed
struct Sub {
    node: NodeId,
    qp: resex_fabric::QpNum,
    lkey: u32,
    gpa: resex_simmem::Gpa,
}

fn run_feed(interferer: bool, prioritized: bool) -> OnlineStats {
    let mut f = Fabric::with_defaults();
    let n_pub = f.add_node();

    // Publisher UD endpoint.
    let pmem = MemoryHandle::new(8 << 20);
    let ppd = f.create_pd(n_pub).unwrap();
    let puar = f.create_uar(n_pub, &pmem).unwrap();
    let pscq = f.create_cq(n_pub, &pmem, 1024).unwrap();
    let prcq = f.create_cq(n_pub, &pmem, 1024).unwrap();
    let pqp = f
        .create_ud_qp(n_pub, ppd, pscq, prcq, 1024, 16, puar)
        .unwrap();
    let pbuf = pmem.alloc_bytes(4096).unwrap();
    let pmr = f
        .register_mr(n_pub, ppd, &pmem, pbuf, 4096, Access::FULL)
        .unwrap();

    // Three subscriber hosts.
    let group = f.create_mcast_group();
    let mut subs = Vec::new();
    for _ in 0..3 {
        let node = f.add_node();
        let mem = MemoryHandle::new(8 << 20);
        let pd = f.create_pd(node).unwrap();
        let uar = f.create_uar(node, &mem).unwrap();
        let scq = f.create_cq(node, &mem, 1024).unwrap();
        let rcq = f.create_cq(node, &mem, 1024).unwrap();
        let qp = f.create_ud_qp(node, pd, scq, rcq, 16, 1024, uar).unwrap();
        let gpa = mem.alloc_bytes(4096).unwrap();
        let mr = f
            .register_mr(node, pd, &mem, gpa, 4096, Access::FULL)
            .unwrap();
        f.join_mcast(group, node, qp).unwrap();
        for i in 0..(TICKS as u64 + 8) {
            f.post_recv(
                node,
                qp,
                RecvRequest {
                    wr_id: i,
                    lkey: mr.lkey,
                    gpa,
                    len: 4096,
                },
            )
            .unwrap();
        }
        subs.push(Sub {
            node,
            qp,
            lkey: mr.lkey,
            gpa,
        });
    }
    let _keep = &subs; // recvs reference the subscriber state

    // Optional bulk interferer sharing the publisher's egress: an RC QP
    // streaming 2 MiB writes to a sink host.
    if interferer {
        let sink = f.add_node();
        let smem = MemoryHandle::new(16 << 20);
        let spd = f.create_pd(sink).unwrap();
        let suar = f.create_uar(sink, &smem).unwrap();
        let sscq = f.create_cq(sink, &smem, 64).unwrap();
        let srcq = f.create_cq(sink, &smem, 64).unwrap();
        let sqp = f.create_qp(sink, spd, sscq, srcq, 64, 64, suar).unwrap();
        let sbuf = smem.alloc_bytes(4 << 20).unwrap();
        let smr = f
            .register_mr(sink, spd, &smem, sbuf, 4 << 20, Access::FULL)
            .unwrap();

        let bpd = f.create_pd(n_pub).unwrap();
        let buar = f.create_uar(n_pub, &pmem).unwrap();
        let bscq = f.create_cq(n_pub, &pmem, 64).unwrap();
        let brcq = f.create_cq(n_pub, &pmem, 64).unwrap();
        let bqp = f.create_qp(n_pub, bpd, bscq, brcq, 64, 64, buar).unwrap();
        let bbuf = pmem.alloc_bytes(2 << 20).unwrap();
        let bmr = f
            .register_mr(n_pub, bpd, &pmem, bbuf, 2 << 20, Access::FULL)
            .unwrap();
        f.connect(n_pub, bqp, sink, sqp).unwrap();
        // Keep the link saturated for the whole run.
        for i in 0..64u64 {
            f.post_send(
                n_pub,
                bqp,
                WorkRequest {
                    wr_id: 1000 + i,
                    opcode: Opcode::RdmaWrite,
                    lkey: bmr.lkey,
                    local_gpa: bbuf,
                    len: 2 << 20,
                    remote: Some(RemoteTarget {
                        rkey: smr.rkey,
                        gpa: sbuf,
                    }),
                    imm: 0,
                    signaled: false,
                },
                SimTime::ZERO,
            )
            .unwrap();
        }
        if prioritized {
            // SL-style protection: the feed outranks the bulk stream.
            f.set_qp_flow_params(
                n_pub,
                pqp,
                FlowParams {
                    priority: 0,
                    ..Default::default()
                },
            )
            .unwrap();
            f.set_qp_flow_params(
                n_pub,
                bqp,
                FlowParams {
                    priority: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        }
    }

    // Publish ticks on a fixed schedule, measuring publish→delivery per
    // subscriber.
    let mut stats = OnlineStats::new();
    let mut now = SimTime::ZERO;
    for tick in 0..TICKS as u64 {
        let publish_at = SimTime::ZERO + TICK_INTERVAL * tick;
        // Drive the fabric up to the publish instant.
        while let Some(t) = f.next_time() {
            if t > publish_at {
                break;
            }
            f.advance(t);
            now = t;
        }
        now = now.max(publish_at);
        pmem.write(pbuf, &tick.to_le_bytes()).unwrap();
        f.post_send_mcast(
            n_pub,
            pqp,
            WorkRequest {
                wr_id: tick,
                opcode: Opcode::Send,
                lkey: pmr.lkey,
                local_gpa: pbuf,
                len: TICK_BYTES,
                remote: None,
                imm: tick as u32,
                signaled: false,
            },
            group,
            now,
        )
        .unwrap();
        // Collect deliveries until the next publish instant.
        let horizon = publish_at + TICK_INTERVAL;
        while let Some(t) = f.next_time() {
            if t > horizon {
                break;
            }
            for (at, ev) in f.advance(t) {
                if let FabricEvent::RecvComplete { .. } = ev {
                    stats.push(at.duration_since(publish_at).as_micros_f64());
                }
            }
            now = t;
        }
    }
    stats
}

fn main() {
    println!("multicast market data: 3 subscribers, {TICKS} ticks of {TICK_BYTES}B at 4k/s\n");
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10}",
        "scenario", "ticks rcvd", "mean µs", "max µs", "std µs"
    );
    for (label, interferer, prio) in [
        ("quiet publisher", false, false),
        ("bulk stream interfering", true, false),
        ("interference + SL priority", true, true),
    ] {
        let s = run_feed(interferer, prio);
        println!(
            "{:<28} {:>10} {:>10.1} {:>10.1} {:>10.2}",
            label,
            s.count(),
            s.mean(),
            s.max(),
            s.population_std_dev()
        );
    }
    println!(
        "\n(a 512B tick serializes in ~0.5 µs; behind a 2 MiB bulk stream it waits\n\
         for the arbiter. A strict SL priority removes the queueing — the residual\n\
         over the quiet case is head-of-line blocking behind the one in-flight\n\
         grant, which shrinks with `FabricConfig::grant_mtus`. This is why\n\
         exchanges put feeds on dedicated service levels.)"
    );
}
