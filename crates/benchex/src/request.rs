//! Transaction wire format.
//!
//! Clients timestamp each transaction, the server echoes the id and
//! timestamp back with its result, and the client computes round-trip
//! latency from the difference — the measurement loop the paper describes.
//! Requests are small (they ride in single-MTU sends); responses are padded
//! to the server's configured *buffer size*, which is the experiment's main
//! knob ("we refer to an application running within a VM by its configured
//! buffer size").

use bytes::{Buf, BufMut};
use resex_finance::{PricingTask, TaskKind};
use resex_simcore::time::SimTime;
use serde::{Deserialize, Serialize};

/// Magic bytes guarding against decoding garbage.
const REQUEST_MAGIC: u32 = 0x5245_5145; // "REQE"
const RESPONSE_MAGIC: u32 = 0x5245_5350; // "RESP"

/// Encoded size of a request on the wire.
pub const REQUEST_WIRE_BYTES: u32 = 44;

/// Minimum bytes of a response that carry data (the rest is padding up to
/// the server's buffer size).
pub const RESPONSE_HEADER_BYTES: u32 = 36;

/// One client transaction.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransactionRequest {
    /// Client-unique request id.
    pub id: u64,
    /// Issuing client.
    pub client_id: u32,
    /// Client send timestamp.
    pub sent_at: SimTime,
    /// The pricing work requested.
    pub task: PricingTask,
}

/// The server's reply header (padded to the configured buffer size on the
/// wire).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransactionResponse {
    /// Echoed request id.
    pub id: u64,
    /// Echoed client send timestamp.
    pub sent_at: SimTime,
    /// Computed value checksum.
    pub value_sum: f64,
    /// Server-side service time in nanoseconds (for the client's records).
    pub service_ns: u64,
}

fn encode_task(task: &PricingTask, buf: &mut impl BufMut) {
    let (kind, param) = match task.kind {
        TaskKind::Quote => (0u8, 0u32),
        TaskKind::Risk => (1, 0),
        TaskKind::Reprice { steps } => (2, steps),
        TaskKind::ImpliedVol => (3, 0),
        TaskKind::MonteCarlo { paths } => (4, paths),
    };
    buf.put_u8(kind);
    buf.put_u32_le(param);
    buf.put_u32_le(task.n_options);
    buf.put_u64_le(task.seed);
}

fn decode_task(buf: &mut impl Buf) -> Option<PricingTask> {
    let kind = buf.get_u8();
    let param = buf.get_u32_le();
    let n_options = buf.get_u32_le();
    let seed = buf.get_u64_le();
    let kind = match kind {
        0 => TaskKind::Quote,
        1 => TaskKind::Risk,
        2 => TaskKind::Reprice { steps: param },
        3 => TaskKind::ImpliedVol,
        4 => TaskKind::MonteCarlo { paths: param },
        _ => return None,
    };
    Some(PricingTask {
        kind,
        n_options,
        seed,
    })
}

impl TransactionRequest {
    /// Serializes to the wire format without touching the heap — the hot
    /// path stamps requests onto the stack and DMA-writes from there.
    pub fn encode_wire(&self) -> [u8; REQUEST_WIRE_BYTES as usize] {
        let mut wire = [0u8; REQUEST_WIRE_BYTES as usize];
        let mut buf = &mut wire[..];
        buf.put_u32_le(REQUEST_MAGIC);
        buf.put_u64_le(self.id);
        buf.put_u32_le(self.client_id);
        buf.put_u64_le(self.sent_at.as_nanos());
        encode_task(&self.task, &mut buf);
        debug_assert_eq!(buf.len(), 3); // trailing reserved bytes stay zero
        wire
    }

    /// Serializes to the wire format.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_wire().to_vec()
    }

    /// Parses the wire format; `None` if malformed.
    pub fn decode(bytes: &[u8]) -> Option<TransactionRequest> {
        if bytes.len() < REQUEST_WIRE_BYTES as usize {
            return None;
        }
        let mut buf = bytes;
        if buf.get_u32_le() != REQUEST_MAGIC {
            return None;
        }
        let id = buf.get_u64_le();
        let client_id = buf.get_u32_le();
        let sent_at = SimTime::from_nanos(buf.get_u64_le());
        let task = decode_task(&mut buf)?;
        Some(TransactionRequest {
            id,
            client_id,
            sent_at,
            task,
        })
    }
}

impl TransactionResponse {
    /// Serializes the header onto the stack (caller pads to the buffer
    /// size) — allocation-free for the per-response hot path.
    pub fn encode_wire(&self) -> [u8; RESPONSE_HEADER_BYTES as usize] {
        let mut wire = [0u8; RESPONSE_HEADER_BYTES as usize];
        let mut buf = &mut wire[..];
        buf.put_u32_le(RESPONSE_MAGIC);
        buf.put_u64_le(self.id);
        buf.put_u64_le(self.sent_at.as_nanos());
        buf.put_f64_le(self.value_sum);
        buf.put_u64_le(self.service_ns);
        debug_assert!(buf.is_empty());
        wire
    }

    /// Serializes the header (caller pads to the buffer size).
    pub fn encode(&self) -> Vec<u8> {
        self.encode_wire().to_vec()
    }

    /// Parses the header from the start of a (padded) response buffer.
    pub fn decode(bytes: &[u8]) -> Option<TransactionResponse> {
        if bytes.len() < RESPONSE_HEADER_BYTES as usize {
            return None;
        }
        let mut buf = bytes;
        if buf.get_u32_le() != RESPONSE_MAGIC {
            return None;
        }
        Some(TransactionResponse {
            id: buf.get_u64_le(),
            sent_at: SimTime::from_nanos(buf.get_u64_le()),
            value_sum: buf.get_f64_le(),
            service_ns: buf.get_u64_le(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> TransactionRequest {
        TransactionRequest {
            id: 42,
            client_id: 7,
            sent_at: SimTime::from_micros(1234),
            task: PricingTask {
                kind: TaskKind::Reprice { steps: 64 },
                n_options: 12,
                seed: 99,
            },
        }
    }

    #[test]
    fn request_roundtrip() {
        let r = req();
        let wire = r.encode();
        assert_eq!(wire.len(), REQUEST_WIRE_BYTES as usize);
        assert_eq!(TransactionRequest::decode(&wire), Some(r));
    }

    #[test]
    fn request_roundtrip_all_kinds() {
        for kind in [TaskKind::Quote, TaskKind::Risk, TaskKind::ImpliedVol] {
            let r = TransactionRequest {
                task: PricingTask {
                    kind,
                    n_options: 1,
                    seed: 0,
                },
                ..req()
            };
            assert_eq!(TransactionRequest::decode(&r.encode()), Some(r));
        }
    }

    #[test]
    fn request_rejects_garbage() {
        assert_eq!(TransactionRequest::decode(&[0u8; 44]), None);
        assert_eq!(TransactionRequest::decode(&[0u8; 10]), None, "too short");
        let mut wire = req().encode();
        wire[0] ^= 0xFF; // corrupt magic
        assert_eq!(TransactionRequest::decode(&wire), None);
    }

    #[test]
    fn response_roundtrip() {
        let r = TransactionResponse {
            id: 9,
            sent_at: SimTime::from_nanos(77),
            value_sum: 1234.5678,
            service_ns: 209_000,
        };
        let wire = r.encode();
        assert_eq!(wire.len(), RESPONSE_HEADER_BYTES as usize);
        assert_eq!(TransactionResponse::decode(&wire), Some(r));
    }

    #[test]
    fn response_decodes_from_padded_buffer() {
        let r = TransactionResponse {
            id: 1,
            sent_at: SimTime::ZERO,
            value_sum: 0.5,
            service_ns: 1,
        };
        let mut padded = r.encode();
        padded.resize(64 * 1024, 0); // padded to a 64 KiB buffer
        assert_eq!(TransactionResponse::decode(&padded), Some(r));
    }
}
