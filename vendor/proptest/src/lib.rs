//! Vendored offline stub of `proptest`: a deterministic mini
//! property-testing framework with the same user-facing macro surface
//! (`proptest!`, `prop_assert!`, `prop_assert_eq!`, `prop_assume!`,
//! `prop_oneof!`, `any`, `Just`, `prop::collection::vec`,
//! `prop::option::of`, ranges as strategies, `.prop_map`).
//!
//! Differences from upstream, deliberately: a fixed case count (256) from
//! a fixed seed derived from the test name — fully deterministic across
//! runs and machines — and no shrinking (failures report the exact inputs
//! by Debug instead).

use std::fmt;

pub mod strategy;

/// Deterministic PRNG handed to strategies (SplitMix64 stream).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift; bias is negligible at test scales.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Why a single generated case did not pass.
pub enum TestCaseError {
    /// `prop_assume!` filtered this case out; try another.
    Reject,
    /// A `prop_assert!`-style check failed.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Debug for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject => f.write_str("rejected by prop_assume"),
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Cases generated per property.
pub const CASES: u32 = 256;

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property: generates cases, stops at the first failure.
/// Rejections (from `prop_assume!`) don't count toward the case total but
/// are capped to avoid spinning on an unsatisfiable assumption.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed0 = fnv1a(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut stream = 0u64;
    while passed < CASES {
        let mut rng = TestRng::new(seed0 ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        stream += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected < 16 * CASES,
                    "property `{name}`: too many prop_assume rejections \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed at case {passed} (stream {stream}): {msg}");
            }
        }
    }
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::TestCaseError;
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Option strategies.
    pub mod option {
        pub use crate::strategy::option_of as of;
    }
}

/// Defines deterministic property tests; same shape as upstream's macro.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            $crate::run_cases(stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::gen(&($strat), __rng);)*
                (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::proptest!{$($rest)*}
    };
}

/// Asserts within a property; failures abort only the current case set.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                        stringify!($left),
                        stringify!($right),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
                }
            }
        }
    };
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}` (both: `{:?}`)",
                        stringify!($left),
                        stringify!($right),
                        __l
                    )));
                }
            }
        }
    };
}

/// Filters the current case; rejected cases are regenerated.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
