//! Crash failure-domain claims: manager, host, and VM crashes are
//! survived end to end — nothing is permanently lost, Resos are
//! conserved across every outage (the decision journal replays exactly
//! onto the live books), and crash-free runs are byte-identical to
//! crash-unaware ones.

use resex_faults::{FaultKind, FaultSchedule, FaultSpec, FaultWindow};
use resex_platform::{run_scenario, CrashTotals, PolicyKind, ScenarioConfig};
use resex_simcore::time::{SimDuration, SimTime};

/// The canonical managed contention case at a short span (the same shape
/// `tests/fault_claims.rs` uses).
fn managed_cfg() -> ScenarioConfig {
    let mut cfg = ScenarioConfig::managed(2 * 1024 * 1024, PolicyKind::IoShares);
    cfg.duration = SimDuration::from_millis(600);
    cfg.warmup = SimDuration::from_millis(100);
    cfg
}

/// A run's complete observable outcome, as a comparable string.
fn fingerprint(cfg: ScenarioConfig) -> String {
    let run = run_scenario(cfg);
    format!("{:?} events={}", run.rows(), run.events_processed)
}

/// One deterministic mid-run manager outage: a one-interval window at
/// rate 1.0 crashes dom0's pricing stack at exactly t = 300 ms; it
/// restarts 50 ms later (the default down-time) and rebuilds from the
/// decision journal. The workload never notices — requests keep
/// flowing, nothing is lost, and the end-of-run conservation audit
/// (replay the journal from scratch, compare against the live books)
/// finds zero divergence.
#[test]
fn a_mid_run_manager_outage_conserves_resos_and_loses_nothing() {
    let mut cfg = managed_cfg();
    cfg.faults = FaultSchedule {
        spec: FaultSpec::parse("seed=7").unwrap(),
        windows: vec![FaultWindow {
            start: SimTime::from_micros(300_000),
            end: SimTime::from_micros(301_000),
            kind: FaultKind::MgrCrash(1.0),
        }],
    };
    let run = run_scenario(cfg);
    assert_eq!(run.crashes.mgr_crashes, 1, "exactly one scheduled outage");
    assert_eq!(
        run.crashes.journal_divergence, 0,
        "journal replay must land exactly on the live books: {:?}",
        run.crashes
    );
    let t = run.recovery_totals();
    assert_eq!(t.lost_requests, 0, "a manager outage loses no requests");
    for vm in &run.vms {
        assert!(
            vm.served > 20,
            "{} stalled at {} served requests across the outage",
            vm.name,
            vm.served
        );
    }
}

/// VM crashes drop in-flight requests (clients see honest timeout
/// latency and re-issue) and the VM rejoins through the normal admission
/// path with a fresh account funded by its journaled balance.
#[test]
fn crashed_vms_rejoin_with_their_journaled_balance() {
    let mut cfg = managed_cfg();
    cfg.faults =
        FaultSchedule::from(FaultSpec::parse("vm_crash=0.01,vm_down_ms=5,seed=3").unwrap());
    let run = run_scenario(cfg);
    assert!(
        run.crashes.vm_crashes >= 1,
        "1% per interval over 600 intervals must crash at least once: {:?}",
        run.crashes
    );
    assert!(
        run.crashes.readmissions >= 1,
        "every crashed VM is re-admitted: {:?}",
        run.crashes
    );
    assert_eq!(
        run.crashes.journal_divergence, 0,
        "readmission funding comes from the journal, conserving Resos"
    );
    assert_eq!(
        run.recovery_totals().lost_requests,
        0,
        "5 ms outages sit well inside the 160 ms client retry budget"
    );
}

/// A host crash tears every resident QP; the connection manager heals
/// them (with empty replay journals — crashes resurrect nothing) and
/// the VMs are re-admitted once the host restarts.
#[test]
fn a_host_crash_tears_and_heals_every_resident_qp() {
    let mut cfg = managed_cfg();
    cfg.faults =
        FaultSchedule::from(FaultSpec::parse("host_crash=0.005,host_down_ms=10,seed=4").unwrap());
    let run = run_scenario(cfg);
    assert!(
        run.crashes.host_crashes >= 1,
        "0.5% per interval over 600 intervals must crash at least once: {:?}",
        run.crashes
    );
    let t = run.recovery_totals();
    assert!(
        t.reconnects >= 1,
        "torn QPs must be reconnected: {t:?} {:?}",
        run.crashes
    );
    assert_eq!(t.lost_requests, 0, "the recovery layer's target: {t:?}");
    assert_eq!(run.crashes.journal_divergence, 0);
}

/// Crash classes at rate zero are *never armed*: such runs are
/// byte-identical to a crash-unaware run of the same scenario, and
/// report all-zero crash totals (the fig JSON key is omitted entirely).
#[test]
fn zero_rate_crash_spec_is_byte_identical_to_clean() {
    let clean = fingerprint(managed_cfg());

    // Non-default down-times and seed, but all crash rates zero: the
    // crash plane must not be installed (and must not consume RNG).
    let mut cfg = managed_cfg();
    cfg.faults = FaultSchedule::from(
        FaultSpec::parse("seed=77,mgr_down_ms=25,host_down_ms=15,vm_down_ms=9").unwrap(),
    );
    assert!(!cfg.faults.crash_enabled());
    assert_eq!(fingerprint(cfg.clone()), clean);
    assert_eq!(run_scenario(cfg).crashes, CrashTotals::default());
}

/// A fixed seed replays a crash-heavy composed schedule byte-for-byte.
#[test]
fn a_fixed_seed_replays_a_crashy_schedule_byte_identically() {
    let crashy = || {
        let mut cfg = managed_cfg();
        cfg.faults = FaultSchedule::from(
            FaultSpec::parse(
                "loss=0.01,vm_crash=0.01,vm_down_ms=5,host_crash=0.002,host_down_ms=10,seed=13",
            )
            .unwrap(),
        );
        cfg
    };
    let a = fingerprint(crashy());
    assert_eq!(a, fingerprint(crashy()), "same seed, same run");
    assert_ne!(a, fingerprint(managed_cfg()), "crashes actually fired");
}
