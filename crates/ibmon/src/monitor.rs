//! The IBMon service: per-VM usage estimation.
//!
//! One [`IbMon`] instance runs (conceptually) in dom0. For each monitored
//! VM it holds [`CqMonitor`]s over the VM's completion-queue rings (mapped
//! via the hypervisor's foreign-mapping interface) and rolls their scans up
//! into per-VM usage estimates: MTUs sent per interval, byte rates, and the
//! VM's apparent application buffer size — everything the ResEx pricing
//! loop consumes (`GetMTUs` in the paper's pseudo-code).

use crate::cq_monitor::{CqMonitor, ScanSample};
use resex_faults::{FaultSchedule, FaultStats, IbmonFaults};
use resex_hypervisor::{DomainId, Hypervisor};
use resex_simcore::stats::Ewma;
use resex_simcore::time::{SimDuration, SimTime};
use resex_simcore::WindowedRate;
use resex_simmem::Gpa;
use resex_simmem::MemError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-interval usage estimate for one VM.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct VmUsage {
    /// MTUs sent since the previous sample (the paper's `MTUSent` metric).
    pub mtus: u64,
    /// Bytes sent since the previous sample.
    pub bytes: u64,
    /// Completions since the previous sample.
    pub completions: u64,
    /// Smoothed estimate of the application's buffer size in bytes
    /// (bytes / completion) — the input to buffer-ratio policies.
    pub est_buffer_size: f64,
    /// MTU rate over the trailing window, per second.
    pub mtu_rate: f64,
    /// True if any underlying ring scan detected aliasing this interval.
    pub aliased: bool,
    /// True when this sample is degraded: the whole scan was skipped (the
    /// fields repeat the last fresh sample) or at least one ring read
    /// through a stale foreign mapping. Consumers should fall back to
    /// last-known rates instead of trusting the counts.
    #[serde(default)]
    pub stale: bool,
}

/// IBMon configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IbMonConfig {
    /// MTU size used to convert bytes to MTUs (paper default: 1 KiB).
    pub mtu: u32,
    /// Length of the trailing rate window.
    pub rate_window: SimDuration,
    /// Smoothing factor for the buffer-size estimate.
    pub buffer_ewma_alpha: f64,
}

impl Default for IbMonConfig {
    fn default() -> Self {
        IbMonConfig {
            mtu: 1024,
            rate_window: SimDuration::from_millis(100),
            buffer_ewma_alpha: 0.2,
        }
    }
}

struct VmMonitor {
    cqs: Vec<CqMonitor>,
    mtu_window: WindowedRate,
    buffer_est: Ewma,
    lifetime_mtus: u64,
    /// Last fully fresh sample, replayed (flagged stale) when a scan is
    /// skipped by fault injection.
    last: VmUsage,
}

/// The dom0 monitoring service.
pub struct IbMon {
    cfg: IbMonConfig,
    vms: HashMap<DomainId, VmMonitor>,
    /// Telemetry fault injectors; `None` (the default) draws nothing and
    /// keeps fault-free runs byte-identical to pre-fault builds.
    faults: Option<IbmonFaults>,
}

impl IbMon {
    /// Creates an empty monitor.
    pub fn new(cfg: IbMonConfig) -> Self {
        IbMon {
            cfg,
            vms: HashMap::new(),
            faults: None,
        }
    }

    /// Arms deterministic telemetry faults (scan skips, stale mappings,
    /// torn CQE reads). A schedule with all rates zero is ignored.
    pub fn install_faults(&mut self, schedule: FaultSchedule) {
        if schedule.enabled() {
            self.faults = Some(IbmonFaults::new(schedule));
        }
    }

    /// Tally of telemetry faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Registers a VM's CQ ring for monitoring, mapping it through the
    /// hypervisor as `caller` (must be privileged, i.e. dom0).
    pub fn watch_cq(
        &mut self,
        hv: &Hypervisor,
        caller: DomainId,
        target: DomainId,
        ring_gpa: Gpa,
        capacity: u32,
    ) -> Result<(), String> {
        let mapping = hv
            .map_foreign_range(
                caller,
                target,
                ring_gpa,
                capacity as usize * resex_fabric::CQE_SIZE,
            )
            .map_err(|e| e.to_string())?;
        let mon = CqMonitor::new(mapping, capacity, self.cfg.mtu).map_err(|e| e.to_string())?;
        self.vms
            .entry(target)
            .or_insert_with(|| VmMonitor {
                cqs: Vec::new(),
                mtu_window: WindowedRate::new(self.cfg.rate_window),
                buffer_est: Ewma::new(self.cfg.buffer_ewma_alpha),
                lifetime_mtus: 0,
                last: VmUsage::default(),
            })
            .cqs
            .push(mon);
        Ok(())
    }

    /// The set of monitored VMs.
    pub fn monitored(&self) -> Vec<DomainId> {
        let mut v: Vec<DomainId> = self.vms.keys().copied().collect();
        v.sort();
        v
    }

    /// Scans all of one VM's rings and returns the interval usage.
    pub fn sample_vm(&mut self, dom: DomainId, now: SimTime) -> Result<VmUsage, MemError> {
        let vm = match self.vms.get_mut(&dom) {
            Some(vm) => vm,
            None => return Ok(VmUsage::default()),
        };
        if let Some(f) = self.faults.as_mut() {
            if f.skip_scan(now) {
                // Whole sample lost: replay the last fresh numbers, flagged
                // so consumers discount them.
                return Ok(VmUsage {
                    stale: true,
                    ..vm.last
                });
            }
        }
        let mut agg = ScanSample::default();
        let mut degraded = false;
        for cq in &mut vm.cqs {
            let tear = match self.faults.as_mut() {
                Some(f) => {
                    if f.stale_mapping(now) {
                        // The foreign mapping re-read old page contents:
                        // this ring contributes nothing this interval and
                        // the aggregate is marked stale.
                        degraded = true;
                        continue;
                    }
                    f.torn_slot(now, cq.capacity())
                }
                None => None,
            };
            let s = cq.scan_faulted(now, tear)?;
            agg.completions += s.completions;
            agg.bytes += s.bytes;
            agg.mtus += s.mtus;
            agg.slots_changed += s.slots_changed;
            agg.aliased |= s.aliased;
            agg.torn += s.torn;
        }
        vm.lifetime_mtus += agg.mtus;
        vm.mtu_window.record(now, agg.mtus);
        if agg.completions > 0 {
            vm.buffer_est
                .push(agg.bytes as f64 / agg.completions as f64);
        }
        let usage = VmUsage {
            mtus: agg.mtus,
            bytes: agg.bytes,
            completions: agg.completions,
            est_buffer_size: vm.buffer_est.value_or(0.0),
            mtu_rate: vm.mtu_window.rate_per_sec(now),
            aliased: agg.aliased,
            stale: degraded,
        };
        if !degraded {
            vm.last = usage;
        }
        Ok(usage)
    }

    /// Lifetime MTU count attributed to a VM.
    pub fn lifetime_mtus(&self, dom: DomainId) -> u64 {
        self.vms.get(&dom).map_or(0, |v| v.lifetime_mtus)
    }
}

/// Result of cross-checking a ring-scan MTU estimate against a trusted
/// per-QP completion counter (see [`crosscheck_mtus`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrosscheckOutcome {
    /// The MTU figure to charge from: the scan estimate normally, the
    /// counter-derived delta when poisoning was detected.
    pub corrected_mtus: u64,
    /// True if the scan estimate was rejected as poisoned.
    pub poisoned: bool,
}

/// Minimum counter-derived MTU delta before a shortfall counts as
/// poisoning: tiny-traffic intervals disagree for benign reasons (scan
/// phase, primed rings) and are never worth correcting.
pub const CROSSCHECK_MIN_MTUS: u64 = 16;

/// The ring scan must account for at least this fraction of the
/// counter-derived MTUs; below it, the estimate is treated as poisoned.
/// Aliased-scan extrapolation is routinely off by tens of percent under
/// honest load — a shortfall past 2× only occurs when the surviving slots
/// systematically misrepresent the wrapped traffic.
pub const CROSSCHECK_MIN_SCAN_FRACTION: f64 = 0.5;

/// Hardening vs telemetry poisoning: validate a per-interval ring-scan MTU
/// estimate (`scan_mtus`) against the MTU delta derived from the fabric's
/// per-QP completion counters (`counter_mtus`), which an attacker cannot
/// influence by repainting ring slots. Returns the figure the manager
/// should charge from. Pure and deterministic — callers decide what to do
/// with the detection flag (trace it, count it).
pub fn crosscheck_mtus(scan_mtus: u64, counter_mtus: u64) -> CrosscheckOutcome {
    let poisoned = counter_mtus >= CROSSCHECK_MIN_MTUS
        && (scan_mtus as f64) < counter_mtus as f64 * CROSSCHECK_MIN_SCAN_FRACTION;
    CrosscheckOutcome {
        corrected_mtus: if poisoned { counter_mtus } else { scan_mtus },
        poisoned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resex_fabric::{CompletionQueue, CqNum, Cqe, Opcode, QpNum, WcStatus, CQE_SIZE};
    use resex_hypervisor::SchedModel;

    fn t(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    /// Builds an hv with dom0 + one guest whose memory holds a CQ ring.
    fn setup() -> (Hypervisor, DomainId, DomainId, CompletionQueue, Gpa) {
        let mut hv = Hypervisor::new(SchedModel::Fluid);
        hv.add_pcpu();
        let dom0 = hv.create_domain("dom0", 1 << 20, true);
        let vm = hv.create_domain("vm1", 1 << 20, false);
        let mem = hv.domain_memory(vm).unwrap();
        let gpa = mem.alloc_bytes(64 * CQE_SIZE as u64).unwrap();
        let cq = CompletionQueue::new(CqNum::new(0), mem, gpa, 64).unwrap();
        (hv, dom0, vm, cq, gpa)
    }

    fn push(cq: &mut CompletionQueue, counter: u16, byte_len: u32) {
        cq.push(Cqe {
            wr_id: counter as u64,
            qp_num: QpNum::new(1),
            byte_len,
            wqe_counter: counter,
            opcode: Opcode::Send,
            status: WcStatus::Success,
            imm_data: 0,
        })
        .unwrap();
        cq.poll().unwrap();
    }

    #[test]
    fn end_to_end_usage_estimation() {
        let (hv, dom0, vm, mut cq, gpa) = setup();
        let mut ibmon = IbMon::new(IbMonConfig::default());
        ibmon.watch_cq(&hv, dom0, vm, gpa, 64).unwrap();
        ibmon.sample_vm(vm, t(0)).unwrap(); // prime

        // The VM "sends" 10 × 64 KiB buffers.
        for i in 0..10 {
            push(&mut cq, i, 65536);
        }
        let u = ibmon.sample_vm(vm, t(1)).unwrap();
        assert_eq!(u.completions, 10);
        assert_eq!(u.mtus, 640);
        assert_eq!(u.bytes, 10 * 65536);
        assert!((u.est_buffer_size - 65536.0).abs() < 1.0);
        assert!(!u.aliased);
        assert_eq!(ibmon.lifetime_mtus(vm), 640);
    }

    #[test]
    fn unprivileged_caller_cannot_watch() {
        let (hv, _dom0, vm, _cq, gpa) = setup();
        let mut ibmon = IbMon::new(IbMonConfig::default());
        let err = ibmon.watch_cq(&hv, vm, vm, gpa, 64).unwrap_err();
        assert!(err.contains("privileged"));
    }

    #[test]
    fn unmonitored_vm_reads_zero() {
        let (_hv, _dom0, vm, _cq, _gpa) = setup();
        let mut ibmon = IbMon::new(IbMonConfig::default());
        let u = ibmon.sample_vm(vm, t(0)).unwrap();
        assert_eq!(u, VmUsage::default());
    }

    #[test]
    fn buffer_estimate_tracks_workload_change() {
        let (hv, dom0, vm, mut cq, gpa) = setup();
        let mut ibmon = IbMon::new(IbMonConfig::default());
        ibmon.watch_cq(&hv, dom0, vm, gpa, 64).unwrap();
        ibmon.sample_vm(vm, t(0)).unwrap();
        let mut counter = 0u16;
        // 64 KiB phase.
        for interval in 1..=5u64 {
            for _ in 0..4 {
                push(&mut cq, counter, 65536);
                counter += 1;
            }
            ibmon.sample_vm(vm, t(interval)).unwrap();
        }
        // Switch to 2 MiB responses: estimate should move toward 2 MiB.
        let mut last = VmUsage::default();
        for interval in 6..=40u64 {
            for _ in 0..4 {
                push(&mut cq, counter, 2 * 1024 * 1024);
                counter += 1;
            }
            last = ibmon.sample_vm(vm, t(interval)).unwrap();
        }
        assert!(
            last.est_buffer_size > 1.9 * 1024.0 * 1024.0,
            "est={}",
            last.est_buffer_size
        );
    }

    #[test]
    fn skipped_scan_replays_last_sample_as_stale() {
        use resex_faults::{FaultSchedule, FaultSpec};
        let (hv, dom0, vm, mut cq, gpa) = setup();
        let mut ibmon = IbMon::new(IbMonConfig::default());
        ibmon.watch_cq(&hv, dom0, vm, gpa, 64).unwrap();
        ibmon.install_faults(FaultSchedule::from(FaultSpec {
            scan_skip: 1.0,
            ..FaultSpec::default()
        }));
        let u = ibmon.sample_vm(vm, t(0)).unwrap();
        assert!(u.stale);
        push(&mut cq, 0, 65536);
        let u = ibmon.sample_vm(vm, t(1)).unwrap();
        assert!(u.stale);
        assert_eq!(u.completions, 0, "activity invisible while scans skip");
        assert_eq!(ibmon.fault_stats().scan_skips, 2);
    }

    #[test]
    fn stale_mapping_blanks_the_ring_and_flags_the_sample() {
        use resex_faults::{FaultSchedule, FaultSpec};
        let (hv, dom0, vm, mut cq, gpa) = setup();
        let mut ibmon = IbMon::new(IbMonConfig::default());
        ibmon.watch_cq(&hv, dom0, vm, gpa, 64).unwrap();
        ibmon.install_faults(FaultSchedule::from(FaultSpec {
            stale_mapping: 1.0,
            ..FaultSpec::default()
        }));
        push(&mut cq, 0, 65536);
        let u = ibmon.sample_vm(vm, t(0)).unwrap();
        assert!(u.stale);
        assert_eq!(u.mtus, 0, "stale mapping re-reads old page contents");
        assert!(ibmon.fault_stats().stale_scans >= 1);
    }

    #[test]
    fn zero_rate_schedule_is_inert() {
        use resex_faults::FaultSchedule;
        let (hv, dom0, vm, mut cq, gpa) = setup();
        let mut ibmon = IbMon::new(IbMonConfig::default());
        ibmon.watch_cq(&hv, dom0, vm, gpa, 64).unwrap();
        ibmon.install_faults(FaultSchedule::default());
        ibmon.sample_vm(vm, t(0)).unwrap();
        push(&mut cq, 0, 65536);
        let u = ibmon.sample_vm(vm, t(1)).unwrap();
        assert!(!u.stale);
        assert_eq!(u.completions, 1);
        assert_eq!(ibmon.fault_stats(), resex_faults::FaultStats::default());
    }

    #[test]
    fn monitored_lists_vms() {
        let (hv, dom0, vm, _cq, gpa) = setup();
        let mut ibmon = IbMon::new(IbMonConfig::default());
        assert!(ibmon.monitored().is_empty());
        ibmon.watch_cq(&hv, dom0, vm, gpa, 64).unwrap();
        assert_eq!(ibmon.monitored(), vec![vm]);
    }

    #[test]
    fn mtu_rate_reflects_window() {
        let (hv, dom0, vm, mut cq, gpa) = setup();
        let mut ibmon = IbMon::new(IbMonConfig::default());
        ibmon.watch_cq(&hv, dom0, vm, gpa, 64).unwrap();
        ibmon.sample_vm(vm, t(0)).unwrap();
        // 100 intervals of 1 ms, 64 MTUs each → 64k MTUs/s.
        let mut last = VmUsage::default();
        for i in 1..=100u64 {
            push(&mut cq, (i - 1) as u16, 65536);
            last = ibmon.sample_vm(vm, t(i)).unwrap();
        }
        assert!(
            (last.mtu_rate - 64_000.0).abs() < 1500.0,
            "rate={}",
            last.mtu_rate
        );
    }
}

#[cfg(test)]
mod multi_ring_tests {
    use super::*;
    use resex_fabric::{CompletionQueue, CqNum, Cqe, Opcode, QpNum, WcStatus, CQE_SIZE};
    use resex_hypervisor::SchedModel;

    /// A VM with two monitored rings (e.g. two QPs' send CQs): samples
    /// aggregate across both.
    #[test]
    fn aggregates_across_multiple_rings() {
        let mut hv = Hypervisor::new(SchedModel::Fluid);
        hv.add_pcpu();
        let dom0 = hv.create_domain("dom0", 1 << 20, true);
        let vm = hv.create_domain("vm", 1 << 20, false);
        let mem = hv.domain_memory(vm).unwrap();
        let gpa_a = mem.alloc_bytes(32 * CQE_SIZE as u64).unwrap();
        let gpa_b = mem.alloc_bytes(32 * CQE_SIZE as u64).unwrap();
        let mut cq_a = CompletionQueue::new(CqNum::new(0), mem.clone(), gpa_a, 32).unwrap();
        let mut cq_b = CompletionQueue::new(CqNum::new(1), mem, gpa_b, 32).unwrap();

        let mut ibmon = IbMon::new(IbMonConfig::default());
        ibmon.watch_cq(&hv, dom0, vm, gpa_a, 32).unwrap();
        ibmon.watch_cq(&hv, dom0, vm, gpa_b, 32).unwrap();
        ibmon.sample_vm(vm, SimTime::ZERO).unwrap();

        let push = |cq: &mut CompletionQueue, qp: u32, counter: u16, len: u32| {
            cq.push(Cqe {
                wr_id: counter as u64,
                qp_num: QpNum::new(qp),
                byte_len: len,
                wqe_counter: counter,
                opcode: Opcode::Send,
                status: WcStatus::Success,
                imm_data: 0,
            })
            .unwrap();
            cq.poll().unwrap();
        };
        // 3 × 64 KiB on ring A, 2 × 128 KiB on ring B.
        for i in 0..3 {
            push(&mut cq_a, 1, i, 65536);
        }
        for i in 0..2 {
            push(&mut cq_b, 2, i, 131072);
        }
        let u = ibmon.sample_vm(vm, SimTime::from_millis(1)).unwrap();
        assert_eq!(u.completions, 5);
        assert_eq!(u.bytes, 3 * 65536 + 2 * 131072);
        assert_eq!(u.mtus, 3 * 64 + 2 * 128);
    }
    #[test]
    fn crosscheck_accepts_honest_estimates_and_rejects_poisoned_ones() {
        // Honest: scan and counters agree (or the scan is merely noisy).
        assert_eq!(
            crosscheck_mtus(1000, 1000),
            CrosscheckOutcome {
                corrected_mtus: 1000,
                poisoned: false
            }
        );
        assert!(!crosscheck_mtus(700, 1000).poisoned);
        // Poisoned: the scan accounts for under half the counter delta.
        let c = crosscheck_mtus(100, 1000);
        assert!(c.poisoned);
        assert_eq!(c.corrected_mtus, 1000, "charge from the counters");
        // Tiny intervals never trip the detector.
        assert!(!crosscheck_mtus(0, CROSSCHECK_MIN_MTUS - 1).poisoned);
        // A scan that *over*-reports is left alone (aliasing scale-up).
        assert!(!crosscheck_mtus(1500, 1000).poisoned);
    }
}
