//! Figure 4 — reporter latency as the 2 MiB interferer's CPU cap is
//! stepped down from 100 % to the buffer-ratio value.
//!
//! Paper: "by changing the CPU cap steadily the latencies experienced by
//! the reporting VM decrease and when the CPU cap is equivalent to the
//! buffer ratio-based value the latency experienced is equal to the base
//! latency."

use crate::experiments::{components, Scale};
use crate::scenario::ScenarioConfig;
use crate::world::run_scenario;
use rayon::prelude::*;
use serde::Serialize;

/// One bar of the figure.
#[derive(Clone, Debug, Serialize)]
pub struct Fig4Row {
    /// Cap applied to the 2 MiB VM (`None` = the uninterfered base case).
    pub cap_pct: Option<u32>,
    /// Reporter's mean CTime, µs.
    pub ctime_us: f64,
    /// Reporter's mean WTime, µs.
    pub wtime_us: f64,
    /// Reporter's mean PTime, µs.
    pub ptime_us: f64,
    /// Reporter's mean total, µs.
    pub total_us: f64,
}

/// The full figure.
#[derive(Clone, Debug, Serialize)]
pub struct Fig4Result {
    /// Rows for caps 100, 90, …, 10, 3, then Base.
    pub rows: Vec<Fig4Row>,
}

/// Runs the cap sweep (in parallel).
pub fn run(scale: &Scale) -> Fig4Result {
    let mut caps: Vec<Option<u32>> = (1..=10).rev().map(|c| Some(c * 10)).collect();
    caps.push(Some(3)); // the buffer-ratio value for 2 MiB / 64 KiB
    caps.push(None); // base case
    let rows = caps
        .into_par_iter()
        .map(|cap| {
            let mut cfg = match cap {
                Some(c) => {
                    let mut cfg = ScenarioConfig::interfered(2 * 1024 * 1024);
                    cfg.vms[1] = cfg.vms[1].clone().with_cap(c);
                    cfg.label = format!("fig4-cap{c}");
                    cfg
                }
                None => ScenarioConfig::base_case(64 * 1024),
            };
            cfg.duration = scale.duration;
            cfg.warmup = scale.warmup;
            scale.stamp_faults(&mut cfg);
            scale.stamp_adversary(&mut cfg);
            let run = run_scenario(cfg);
            let (p, c, w, t) = components(&run, "64KB");
            Fig4Row {
                cap_pct: cap,
                ctime_us: c,
                wtime_us: w,
                ptime_us: p,
                total_us: t,
            }
        })
        .collect();
    Fig4Result { rows }
}

impl Fig4Result {
    /// Prints the figure.
    pub fn print(&self) {
        println!("Figure 4 — reporter latency vs 2MB VM's CPU cap");
        println!(
            "\n  {:>6} {:>10} {:>10} {:>10} {:>10}",
            "cap", "CTime µs", "WTime µs", "PTime µs", "total µs"
        );
        for r in &self.rows {
            let cap = r
                .cap_pct
                .map(|c| c.to_string())
                .unwrap_or_else(|| "Base".into());
            println!(
                "  {:>6} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                cap, r.ctime_us, r.wtime_us, r.ptime_us, r.total_us
            );
        }
        // Monotonicity check: lowering the cap should never raise latency
        // beyond noise.
        let capped: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.cap_pct.is_some())
            .map(|r| r.total_us)
            .collect();
        let decreasing = capped.windows(2).filter(|w| w[1] <= w[0] + 2.0).count();
        println!(
            "\n  monotone-decreasing steps: {}/{} (paper: strictly decreasing)",
            decreasing,
            capped.len() - 1
        );
    }
}
