#!/usr/bin/env bash
# Local CI: format, lint, build, and the tier-1 test suite — fully offline.
# Usage: ./ci.sh
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

# --workspace everywhere: the repo root is itself a package (resex-repro),
# so a bare `cargo build` would build only it — leaving the resex-bench
# `repro` binary the gates below depend on stale (or missing on a fresh
# clone), and skipping the member crates' test suites.
echo "==> cargo build --release --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --workspace (superset of tier-1)"
cargo test -q --offline --workspace

REPRO=./target/release/repro
# Pool width for the parallel legs: the host's cores, but at least 4 so
# cross-thread stealing is exercised even on small CI hosts.
PAR_THREADS="${RESEX_PAR_THREADS:-$(nproc)}"
if [ "$PAR_THREADS" -lt 4 ]; then PAR_THREADS=4; fi
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "==> determinism gate: fig9 --quick JSON, RESEX_THREADS=1 vs $PAR_THREADS"
RESEX_THREADS=1 "$REPRO" fig9 --quick --json "$TMP/fig9_seq.json" >/dev/null 2>&1
RESEX_THREADS="$PAR_THREADS" "$REPRO" fig9 --quick --json "$TMP/fig9_par.json" >/dev/null 2>&1
cmp "$TMP/fig9_seq.json" "$TMP/fig9_par.json"
echo "    byte-identical"

echo "==> zero-perturbation gate: profiled fig9 JSON byte-identical to unprofiled"
# The DES self-profiler must be a pure observer: running fig9 under
# `repro profile` may not change a byte of the figure data.
RESEX_THREADS=1 "$REPRO" profile fig9 --quick --json "$TMP/fig9_prof.json" \
    --profile-json "$TMP/fig9_report.json" >/dev/null 2>&1
cmp "$TMP/fig9_seq.json" "$TMP/fig9_prof.json"
grep -q '"schema": "resex-profile-v1"' "$TMP/fig9_report.json" || {
    echo "    FAIL: profile report missing schema"; exit 1; }
grep -q '"name": "FabricSync"' "$TMP/fig9_report.json" || {
    echo "    FAIL: profile report event-type table is empty"; exit 1; }
echo "    byte-identical; profile report parsed with a populated event-type table"

echo "==> fault-matrix smoke: fig9 --quick under 1% loss, 3 fault seeds"
for seed in 1 2 3; do
    "$REPRO" fig9 --quick --faults "loss=0.01,skip=0.02,capfail=0.02,seed=$seed" \
        >/dev/null 2>&1
    echo "    seed=$seed ok"
done

echo "==> faulted-run determinism gate: same fault seed, byte-identical JSON"
FAULTS="loss=0.01,corrupt=0.002,skip=0.02,capfail=0.02,seed=7"
RESEX_THREADS=1 "$REPRO" fig9 --quick --faults "$FAULTS" \
    --json "$TMP/fig9_fault_a.json" >/dev/null 2>&1
RESEX_THREADS=1 "$REPRO" fig9 --quick --faults "$FAULTS" \
    --json "$TMP/fig9_fault_b.json" >/dev/null 2>&1
cmp "$TMP/fig9_fault_a.json" "$TMP/fig9_fault_b.json"
echo "    byte-identical"

echo "==> recovery soak gate: fig9 --quick under 1% loss + periodic link flaps"
# The self-healing layer's acceptance bar: the flapping sweep completes,
# permanently loses nothing (lost=0 on the printed recovery line, which
# only appears when reconnect-with-replay actually happened), and is
# byte-identical across two runs.
SOAK="loss=0.01,flap_ms=50,flap_down_us=2000,seed=7"
RESEX_THREADS=1 "$REPRO" fig9 --quick --faults "$SOAK" \
    --json "$TMP/fig9_soak_a.json" > "$TMP/fig9_soak_a.txt" 2>&1
RESEX_THREADS=1 "$REPRO" fig9 --quick --faults "$SOAK" \
    --json "$TMP/fig9_soak_b.json" > /dev/null 2>&1
cmp "$TMP/fig9_soak_a.json" "$TMP/fig9_soak_b.json"
grep -q "recovery: " "$TMP/fig9_soak_a.txt" || {
    echo "    FAIL: no recovery line — flaps never broke a QP"; exit 1; }
grep "recovery: " "$TMP/fig9_soak_a.txt" | grep -q " lost=0 " || {
    echo "    FAIL: requests permanently lost:"; \
    grep "recovery: " "$TMP/fig9_soak_a.txt"; exit 1; }
sed -n 's/^  recovery:/    survived flaps:/p' "$TMP/fig9_soak_a.txt"
echo "    byte-identical across runs, lost=0"

echo "==> sweep wall-clock: repro all --quick (per-target timings below)"
t0=$(date +%s.%N)
RESEX_THREADS=1 "$REPRO" all --quick >/dev/null
t1=$(date +%s.%N)
RESEX_THREADS="$PAR_THREADS" "$REPRO" all --quick >/dev/null
t2=$(date +%s.%N)
GIT_REV="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
awk -v t0="$t0" -v t1="$t1" -v t2="$t2" -v par="$PAR_THREADS" -v cores="$(nproc)" \
    -v rev="$GIT_REV" '
BEGIN {
    seq = t1 - t0; parallel = t2 - t1;
    printf "    sequential (RESEX_THREADS=1):   %6.2f s\n", seq;
    printf "    parallel   (RESEX_THREADS=%d):   %6.2f s\n", par, parallel;
    printf "    speedup: %.2fx on %d core(s)\n", seq / parallel, cores;
    printf "{\n  \"bench\": \"repro all --quick\",\n  \"git_rev\": \"%s\",\n  \"flags\": \"all --quick\",\n  \"cores\": %d,\n  \"threads_parallel\": %d,\n  \"sequential_s\": %.3f,\n  \"parallel_s\": %.3f,\n  \"speedup\": %.3f\n}\n", rev, cores, par, seq, parallel, seq / parallel > "BENCH_sweep.json";
}'
echo "    wrote BENCH_sweep.json"

echo "==> perf profile: repro profile all --quick -> BENCH_profile.json"
# The committed perf artifact: merged self-profile of the whole sweep
# (top event types by self-time, allocs/event, events/sec, per-target
# wall-clock) stamped with git revision + thread count.
RESEX_THREADS="$PAR_THREADS" "$REPRO" profile all --quick \
    --profile-json BENCH_profile.json >/dev/null 2>&1
grep -q '"schema": "resex-profile-v1"' BENCH_profile.json || {
    echo "    FAIL: BENCH_profile.json missing schema"; exit 1; }
grep -q '"git_rev"' BENCH_profile.json || {
    echo "    FAIL: BENCH_profile.json missing provenance"; exit 1; }
grep -q '"name": "FabricSync"' BENCH_profile.json || {
    echo "    FAIL: BENCH_profile.json event-type table is empty"; exit 1; }
echo "    wrote BENCH_profile.json"

echo "==> OK"
