//! IBMon scan cost: the dom0 monitoring loop runs every millisecond over
//! every monitored VM's rings, so scan cost bounds how many VMs one dom0
//! can watch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use resex_fabric::{CompletionQueue, CqNum, Cqe, Opcode, QpNum, WcStatus, CQE_SIZE};
use resex_ibmon::CqMonitor;
use resex_simcore::time::SimTime;
use resex_simmem::{ForeignMapping, MemoryHandle};
use std::hint::black_box;

fn setup(capacity: u32) -> (CompletionQueue, CqMonitor) {
    let mem = MemoryHandle::new(8 << 20);
    let gpa = mem.alloc_bytes(capacity as u64 * CQE_SIZE as u64).unwrap();
    let cq = CompletionQueue::new(CqNum::new(0), mem.clone(), gpa, capacity).unwrap();
    let mapping = ForeignMapping::map(&mem, gpa, capacity as usize * CQE_SIZE).unwrap();
    let mon = CqMonitor::new(mapping, capacity, 1024).unwrap();
    (cq, mon)
}

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("ibmon_scan");
    for capacity in [64u32, 256, 1024] {
        g.throughput(Throughput::Elements(capacity as u64));
        g.bench_with_input(
            BenchmarkId::new("quiet_ring", capacity),
            &capacity,
            |b, &capacity| {
                let (_cq, mut mon) = setup(capacity);
                let mut t = 0u64;
                b.iter(|| {
                    t += 1;
                    black_box(mon.scan(SimTime::from_millis(t)).unwrap())
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("busy_ring", capacity),
            &capacity,
            |b, &capacity| {
                let (mut cq, mut mon) = setup(capacity);
                let mut t = 0u64;
                let mut counter = 0u16;
                b.iter(|| {
                    // 8 fresh completions between scans.
                    for _ in 0..8 {
                        cq.push(Cqe {
                            wr_id: counter as u64,
                            qp_num: QpNum::new(1),
                            byte_len: 65536,
                            wqe_counter: counter,
                            opcode: Opcode::Send,
                            status: WcStatus::Success,
                            imm_data: 0,
                        })
                        .unwrap();
                        cq.poll().unwrap();
                        counter = counter.wrapping_add(1);
                    }
                    t += 1;
                    black_box(mon.scan(SimTime::from_millis(t)).unwrap())
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
