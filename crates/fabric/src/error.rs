//! Fabric error types.

use crate::types::{CqNum, NodeId, PdId, QpNum};
use resex_simmem::MemError;
use std::fmt;

/// Failures of verbs-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// Referenced node does not exist.
    UnknownNode(NodeId),
    /// Referenced queue pair does not exist on that node.
    UnknownQp(NodeId, QpNum),
    /// Referenced completion queue does not exist on that node.
    UnknownCq(NodeId, CqNum),
    /// Referenced protection domain does not exist on that node.
    UnknownPd(NodeId, PdId),
    /// A memory key failed TPT validation.
    InvalidKey {
        /// The offending key.
        key: u32,
        /// Human-readable reason (stale generation, bad range, missing access).
        reason: &'static str,
    },
    /// The QP is not in the state required for the operation.
    BadQpState {
        /// The queue pair.
        qp: QpNum,
        /// What the operation required.
        needed: &'static str,
    },
    /// The send queue is full.
    SendQueueFull(QpNum),
    /// The receive queue is full.
    RecvQueueFull(QpNum),
    /// Objects from different protection domains were mixed.
    PdMismatch,
    /// An underlying guest-memory failure.
    Mem(MemError),
    /// Bad configuration at construction time.
    Config(String),
    /// The engine's internal bookkeeping referenced state that no longer
    /// exists (e.g. a timer fired for a destroyed node). Carries enough
    /// context to locate the inconsistency; surfaced instead of panicking
    /// so fault-injected scenarios fail loudly but recoverably.
    InternalInconsistency(String),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::UnknownNode(n) => write!(f, "unknown node {n}"),
            FabricError::UnknownQp(n, q) => write!(f, "unknown queue pair {q} on {n}"),
            FabricError::UnknownCq(n, c) => write!(f, "unknown completion queue {c} on {n}"),
            FabricError::UnknownPd(n, p) => write!(f, "unknown protection domain {p} on {n}"),
            FabricError::InvalidKey { key, reason } => {
                write!(f, "memory key {key:#x} rejected: {reason}")
            }
            FabricError::BadQpState { qp, needed } => {
                write!(f, "{qp} is in the wrong state: operation needs {needed}")
            }
            FabricError::SendQueueFull(q) => write!(f, "send queue of {q} is full"),
            FabricError::RecvQueueFull(q) => write!(f, "receive queue of {q} is full"),
            FabricError::PdMismatch => write!(f, "protection-domain mismatch"),
            FabricError::Mem(e) => write!(f, "guest memory error: {e}"),
            FabricError::Config(msg) => write!(f, "invalid fabric configuration: {msg}"),
            FabricError::InternalInconsistency(msg) => {
                write!(f, "fabric internal inconsistency: {msg}")
            }
        }
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FabricError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for FabricError {
    fn from(e: MemError) -> Self {
        FabricError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<FabricError> = vec![
            FabricError::UnknownNode(NodeId::new(1)),
            FabricError::UnknownQp(NodeId::new(0), QpNum::new(5)),
            FabricError::InvalidKey {
                key: 0xAB,
                reason: "stale generation",
            },
            FabricError::BadQpState {
                qp: QpNum::new(1),
                needed: "RTS",
            },
            FabricError::SendQueueFull(QpNum::new(2)),
            FabricError::PdMismatch,
            FabricError::InternalInconsistency("timer for missing node".into()),
        ];
        for c in cases {
            assert!(!format!("{c}").is_empty());
        }
    }

    #[test]
    fn mem_error_converts() {
        let me = MemError::NotPinned {
            page_base: resex_simmem::Gpa::new(0),
        };
        let fe: FabricError = me.clone().into();
        assert_eq!(fe, FabricError::Mem(me));
        assert!(std::error::Error::source(&fe).is_some());
    }
}
