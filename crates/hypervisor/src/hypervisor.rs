//! The hypervisor core: domains, VCPU scheduling, accounting.
//!
//! [`Hypervisor`] is driven like the fabric: the platform asks
//! [`next_time`](Hypervisor::next_time) when the scheduler next has
//! something to say (a job completion) and calls
//! [`advance`](Hypervisor::advance) to collect [`HvEvent`]s.
//!
//! The interesting mechanic is **cap enforcement**: the paper's entire
//! actuation path is "set the interfering VM's CPU cap", because the
//! hypervisor cannot touch VMM-bypass I/O directly. A capped VM's compute
//! jobs finish later, so it posts work requests more slowly, so its I/O
//! rate drops — the cap→I/O coupling the paper establishes in Figures 3/4.

use crate::domain::{Domain, DomainId};
use crate::error::HvError;
use crate::sched::{
    fair_shares_into, fluid_finish, slice_finish, slice_progress, SchedModel, ShareReq,
};
use crate::vcpu::{Job, PcpuId, Vcpu, VcpuId, VcpuMode};
use resex_faults::{ControlFaults, FaultSchedule, FaultStats};
use resex_obs::{subsystem, Scope, Tracer};
use resex_simcore::time::{SimDuration, SimTime};
use resex_simmem::MemoryHandle;

/// Events emitted by [`Hypervisor::advance`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HvEvent {
    /// A compute job finished.
    JobDone {
        /// Owning domain.
        dom: DomainId,
        /// The VCPU it ran on.
        vcpu: VcpuId,
        /// The tag passed to [`Hypervisor::start_job`].
        tag: u64,
    },
}

/// The simulated hypervisor for one physical host.
///
/// ```
/// use resex_hypervisor::{Hypervisor, SchedModel};
/// use resex_simcore::time::{SimDuration, SimTime};
///
/// let mut hv = Hypervisor::new(SchedModel::Fluid);
/// let pcpu = hv.add_pcpu();
/// let dom0 = hv.create_domain("dom0", 1 << 20, true);
/// let vm = hv.create_domain("vm", 1 << 20, false);
/// let vcpu = hv.add_vcpu(vm, pcpu, SimTime::ZERO).unwrap();
///
/// // A 2 ms job at a 25% cap takes 8 ms of wall time.
/// hv.privileged_set_cap(dom0, vm, 25, SimTime::ZERO).unwrap();
/// hv.start_job(vcpu, SimDuration::from_millis(2), 7, SimTime::ZERO).unwrap();
/// assert_eq!(hv.next_time(), Some(SimTime::from_millis(8)));
/// ```
pub struct Hypervisor {
    model: SchedModel,
    domains: Vec<Domain>,
    vcpus: Vec<Vcpu>,
    n_pcpus: u32,
    tracer: Tracer,
    /// Actuation fault injector; `None` (the default) draws nothing and
    /// keeps fault-free runs byte-identical to pre-fault builds.
    faults: Option<ControlFaults>,
    /// Reusable scratch for [`Hypervisor::reschedule`] (runnable VCPU
    /// indices, share requests, computed rates, water-filling open set) —
    /// rescheduling runs on every job start and must not allocate.
    sched_idx: Vec<usize>,
    sched_reqs: Vec<ShareReq>,
    sched_rates: Vec<f64>,
    sched_open: Vec<usize>,
}

impl Hypervisor {
    /// Creates a hypervisor with the given scheduling model and no PCPUs.
    pub fn new(model: SchedModel) -> Self {
        Hypervisor {
            model,
            domains: Vec::new(),
            vcpus: Vec::new(),
            n_pcpus: 0,
            tracer: Tracer::disabled(),
            faults: None,
            sched_idx: Vec::new(),
            sched_reqs: Vec::new(),
            sched_rates: Vec::new(),
            sched_open: Vec::new(),
        }
    }

    /// Arms deterministic actuation faults (transient `SetVMCap`
    /// failures). A schedule with all rates zero is ignored.
    pub fn install_faults(&mut self, schedule: FaultSchedule) {
        if schedule.enabled() {
            self.faults = Some(ControlFaults::new(schedule));
        }
    }

    /// Tally of actuation faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Draws whether the next privileged actuation fails transiently.
    pub(crate) fn actuation_fails(&mut self, now: SimTime) -> bool {
        self.faults.as_mut().is_some_and(|f| f.cap_fails(now))
    }

    /// Installs an observability tracer. Scheduling is unaffected; the
    /// hypervisor only *emits* through it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The active scheduling model.
    pub fn model(&self) -> SchedModel {
        self.model
    }

    /// Adds a physical CPU.
    pub fn add_pcpu(&mut self) -> PcpuId {
        self.n_pcpus += 1;
        PcpuId::new(self.n_pcpus - 1)
    }

    /// Number of physical CPUs.
    pub fn pcpus(&self) -> u32 {
        self.n_pcpus
    }

    /// Creates a domain. The first domain created is dom0 (privileged by
    /// convention; pass `privileged = true` for it).
    pub fn create_domain(
        &mut self,
        name: impl Into<String>,
        mem_bytes: u64,
        privileged: bool,
    ) -> DomainId {
        let id = DomainId::new(self.domains.len() as u32);
        self.domains.push(Domain {
            id,
            name: name.into(),
            mem: MemoryHandle::new(mem_bytes),
            privileged,
            weight: 256,
            cap_pct: 0,
        });
        id
    }

    fn dom(&self, d: DomainId) -> Result<&Domain, HvError> {
        self.domains.get(d.index()).ok_or(HvError::UnknownDomain(d))
    }

    fn dom_mut(&mut self, d: DomainId) -> Result<&mut Domain, HvError> {
        self.domains
            .get_mut(d.index())
            .ok_or(HvError::UnknownDomain(d))
    }

    /// A domain's guest memory.
    pub fn domain_memory(&self, d: DomainId) -> Result<MemoryHandle, HvError> {
        Ok(self.dom(d)?.mem.clone())
    }

    /// A domain's name.
    pub fn domain_name(&self, d: DomainId) -> Result<&str, HvError> {
        Ok(&self.dom(d)?.name)
    }

    /// Whether a domain is privileged.
    pub fn is_privileged(&self, d: DomainId) -> Result<bool, HvError> {
        Ok(self.dom(d)?.privileged)
    }

    /// Adds a VCPU to a domain, pinned to `pcpu`.
    ///
    /// The slice-granular model supports at most one VCPU per PCPU (the
    /// paper's configuration — "each guest domain is assigned a VCPU each").
    pub fn add_vcpu(
        &mut self,
        dom: DomainId,
        pcpu: PcpuId,
        now: SimTime,
    ) -> Result<VcpuId, HvError> {
        self.dom(dom)?;
        if pcpu.raw() >= self.n_pcpus {
            return Err(HvError::UnknownPcpu(pcpu));
        }
        if matches!(self.model, SchedModel::Slice { .. })
            && self.vcpus.iter().any(|v| v.pcpu == pcpu)
        {
            return Err(HvError::PcpuOvercommitted(pcpu));
        }
        let id = VcpuId::new(self.vcpus.len() as u32);
        let mut v = Vcpu::new(id, dom, pcpu);
        v.last_update = now;
        self.vcpus.push(v);
        self.reschedule(now);
        Ok(id)
    }

    fn vcpu(&self, v: VcpuId) -> Result<&Vcpu, HvError> {
        self.vcpus.get(v.index()).ok_or(HvError::UnknownVcpu(v))
    }

    // ----- tuning knobs ---------------------------------------------------

    /// Sets a domain's CPU cap in percent (0 = uncapped, Xen semantics).
    ///
    /// As in Xen, the cap is a *domain* budget in percent of one PCPU:
    /// values above 100 are meaningful for multi-VCPU domains (e.g. 150 on
    /// a 2-VCPU domain runs each VCPU at 75 %). The budget is split evenly
    /// across the domain's runnable VCPUs.
    pub fn set_cap(&mut self, dom: DomainId, cap_pct: u32, now: SimTime) -> Result<(), HvError> {
        let vcpus = self.vcpus.iter().filter(|v| v.dom == dom).count().max(1) as u32;
        if cap_pct > 100 * vcpus {
            return Err(HvError::BadParameter {
                what: "cap_pct",
                value: cap_pct as i64,
            });
        }
        self.accrue_all(now);
        let old_cap = self.dom(dom)?.cap_pct;
        self.dom_mut(dom)?.cap_pct = cap_pct;
        self.reschedule(now);
        if self.tracer.enabled() {
            self.tracer.instant(
                now,
                subsystem::HV_SCHED,
                "set_cap",
                Scope::Domain(dom.raw()),
                vec![("cap_pct", cap_pct.into()), ("old_cap_pct", old_cap.into())],
            );
            self.tracer.counter(
                now,
                subsystem::HV_SCHED,
                "cap_pct",
                Scope::Domain(dom.raw()),
                cap_pct as f64,
            );
        }
        Ok(())
    }

    /// Sets a domain's scheduling weight.
    pub fn set_weight(&mut self, dom: DomainId, weight: u32, now: SimTime) -> Result<(), HvError> {
        if weight == 0 {
            return Err(HvError::BadParameter {
                what: "weight",
                value: 0,
            });
        }
        self.accrue_all(now);
        self.dom_mut(dom)?.weight = weight;
        self.reschedule(now);
        Ok(())
    }

    /// A domain's current cap (0 = uncapped).
    pub fn cap(&self, dom: DomainId) -> Result<u32, HvError> {
        Ok(self.dom(dom)?.cap_pct)
    }

    /// A domain's current weight.
    pub fn weight(&self, dom: DomainId) -> Result<u32, HvError> {
        Ok(self.dom(dom)?.weight)
    }

    // ----- workload interface --------------------------------------------

    /// Starts a finite compute job of `cpu_time` on `vcpu`. Completion is
    /// reported by [`Hypervisor::advance`] as [`HvEvent::JobDone`] with `tag`.
    pub fn start_job(
        &mut self,
        vcpu: VcpuId,
        cpu_time: SimDuration,
        tag: u64,
        now: SimTime,
    ) -> Result<(), HvError> {
        self.vcpu(vcpu)?;
        if self.vcpus[vcpu.index()].mode == VcpuMode::Busy {
            return Err(HvError::VcpuBusy(vcpu));
        }
        self.accrue_all(now);
        let v = &mut self.vcpus[vcpu.index()];
        v.mode = VcpuMode::Busy;
        v.job = Some(Job {
            tag,
            remaining: cpu_time,
        });
        let dom = v.dom;
        self.reschedule(now);
        if self.tracer.enabled() {
            self.tracer.instant(
                now,
                subsystem::HV_SCHED,
                "job_start",
                Scope::Domain(dom.raw()),
                vec![
                    ("cpu_time_ns", cpu_time.as_nanos().into()),
                    ("tag", tag.into()),
                ],
            );
        }
        Ok(())
    }

    /// Puts a VCPU into busy-polling mode (burns CPU, no completion event).
    pub fn set_polling(&mut self, vcpu: VcpuId, now: SimTime) -> Result<(), HvError> {
        self.vcpu(vcpu)?;
        self.accrue_all(now);
        let v = &mut self.vcpus[vcpu.index()];
        v.mode = VcpuMode::Polling;
        v.job = None;
        self.reschedule(now);
        Ok(())
    }

    /// Blocks a VCPU (stops consuming CPU).
    pub fn set_idle(&mut self, vcpu: VcpuId, now: SimTime) -> Result<(), HvError> {
        self.vcpu(vcpu)?;
        self.accrue_all(now);
        let v = &mut self.vcpus[vcpu.index()];
        v.mode = VcpuMode::Idle;
        v.job = None;
        self.reschedule(now);
        Ok(())
    }

    /// A VCPU's current mode.
    pub fn mode(&self, vcpu: VcpuId) -> Result<VcpuMode, HvError> {
        Ok(self.vcpu(vcpu)?.mode)
    }

    // ----- accounting ------------------------------------------------------

    /// Total CPU time consumed by a domain across its VCPUs, accurate as of
    /// `now`. This is the XenStat data source.
    pub fn cpu_time_used(&mut self, dom: DomainId, now: SimTime) -> Result<SimDuration, HvError> {
        self.dom(dom)?;
        self.accrue_all(now);
        let ns: f64 = self
            .vcpus
            .iter()
            .filter(|v| v.dom == dom)
            .map(|v| v.accrued_ns)
            .sum();
        Ok(SimDuration::from_nanos(ns.round() as u64))
    }

    // ----- event loop ------------------------------------------------------

    /// When the next job completion is due, if any.
    pub fn next_time(&self) -> Option<SimTime> {
        self.vcpus
            .iter()
            .filter_map(|v| self.completion_time(v))
            .min()
    }

    /// Processes completions due at or before `now`.
    pub fn advance(&mut self, now: SimTime) -> Vec<(SimTime, HvEvent)> {
        let mut out = Vec::new();
        self.advance_into(now, &mut out);
        out
    }

    /// Allocation-free variant of [`Self::advance`]: pushes completions into
    /// a caller-owned scratch buffer instead of returning a fresh `Vec`.
    pub fn advance_into(&mut self, now: SimTime, out: &mut Vec<(SimTime, HvEvent)>) {
        loop {
            let next = self
                .vcpus
                .iter()
                .filter_map(|v| self.completion_time(v).map(|t| (t, v.id)))
                .min_by_key(|&(t, id)| (t, id));
            let (t, vid) = match next {
                Some((t, vid)) if t <= now => (t, vid),
                _ => break,
            };
            self.accrue_all(t);
            let v = &mut self.vcpus[vid.index()];
            let tag = v.job.map(|j| j.tag).unwrap_or(0);
            v.job = None;
            // The application decides what's next; until told otherwise the
            // VCPU keeps burning CPU polling (matching BenchEx servers).
            v.mode = VcpuMode::Polling;
            let dom = v.dom;
            if self.tracer.enabled() {
                let burned = self.vcpus[vid.index()].accrued_ns;
                self.tracer.instant(
                    t,
                    subsystem::HV_SCHED,
                    "job_done",
                    Scope::Domain(dom.raw()),
                    vec![("tag", tag.into())],
                );
                self.tracer.counter(
                    t,
                    subsystem::HV_SCHED,
                    "credit_burn_ns",
                    Scope::Domain(dom.raw()),
                    burned,
                );
            }
            out.push((
                t,
                HvEvent::JobDone {
                    dom,
                    vcpu: vid,
                    tag,
                },
            ));
            // Busy → Polling does not change the runnable set, so rates
            // stand; nothing to reschedule.
        }
    }

    // ----- internals --------------------------------------------------------

    /// Cap fraction applied to one VCPU: the domain's budget divided by the
    /// domain's *runnable* VCPU count (Xen's cap is a domain-wide budget).
    /// With the paper's one-VCPU-per-domain setup this equals the raw cap.
    fn cap_fraction(&self, v: &Vcpu) -> Option<f64> {
        let dom_cap = self.domains[v.dom.index()].cap_fraction()?;
        let runnable = self
            .vcpus
            .iter()
            .filter(|o| o.dom == v.dom && o.runnable())
            .count()
            .max(1);
        Some(dom_cap / runnable as f64)
    }

    /// The absolute time the VCPU's current job completes, if it has one.
    fn completion_time(&self, v: &Vcpu) -> Option<SimTime> {
        let job = v.job?;
        match self.model {
            SchedModel::Fluid => {
                if v.rate <= 0.0 {
                    None
                } else {
                    Some(fluid_finish(v.last_update, job.remaining, v.rate))
                }
            }
            SchedModel::Slice { period } => {
                let c = self.cap_fraction(v).unwrap_or(1.0);
                if c <= 0.0 {
                    None
                } else {
                    Some(slice_finish(v.last_update, job.remaining, c, period))
                }
            }
        }
    }

    /// Brings every VCPU's accounting (and job progress) up to `now`.
    fn accrue_all(&mut self, now: SimTime) {
        let model = self.model;
        for i in 0..self.vcpus.len() {
            let (dom_cap, runnable) = {
                let v = &self.vcpus[i];
                (self.cap_fraction(v), v.runnable())
            };
            let v = &mut self.vcpus[i];
            if now <= v.last_update {
                continue;
            }
            if runnable {
                let served = match model {
                    SchedModel::Fluid => {
                        let dt = now.duration_since(v.last_update).as_nanos() as f64;
                        SimDuration::from_nanos((dt * v.rate).round() as u64)
                    }
                    SchedModel::Slice { period } => {
                        slice_progress(v.last_update, now, dom_cap.unwrap_or(1.0), period)
                    }
                };
                v.accrued_ns += served.as_nanos() as f64;
                if let Some(job) = &mut v.job {
                    job.remaining = job.remaining.saturating_sub(served);
                }
            }
            v.last_update = now;
        }
    }

    /// Recomputes fluid service rates after any runnable-set or knob change.
    fn reschedule(&mut self, now: SimTime) {
        if !matches!(self.model, SchedModel::Fluid) {
            return;
        }
        // Scratch buffers are taken out of `self` for the borrow checker's
        // benefit and restored at the end; steady-state this loop does not
        // allocate.
        let mut idx = std::mem::take(&mut self.sched_idx);
        let mut reqs = std::mem::take(&mut self.sched_reqs);
        let mut rates = std::mem::take(&mut self.sched_rates);
        let mut open = std::mem::take(&mut self.sched_open);
        for p in 0..self.n_pcpus {
            let pcpu = PcpuId::new(p);
            idx.clear();
            idx.extend(
                self.vcpus
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.pcpu == pcpu && v.runnable())
                    .map(|(i, _)| i),
            );
            reqs.clear();
            reqs.extend(idx.iter().map(|&i| {
                let v = &self.vcpus[i];
                ShareReq {
                    weight: self.domains[v.dom.index()].weight,
                    cap: self.cap_fraction(v),
                }
            }));
            fair_shares_into(&reqs, &mut rates, &mut open);
            for (&i, &r) in idx.iter().zip(rates.iter()) {
                let changed = self.vcpus[i].rate != r;
                self.vcpus[i].rate = r;
                // A rate drop while runnable is the fluid model's analogue
                // of a preemption: the scheduler took capacity away.
                if changed && self.tracer.enabled() {
                    self.tracer.counter(
                        now,
                        subsystem::HV_SCHED,
                        "cpu_rate",
                        Scope::Domain(self.vcpus[i].dom.raw()),
                        r,
                    );
                }
            }
            // Non-runnable VCPUs have no rate.
            for v in self.vcpus.iter_mut() {
                if v.pcpu == pcpu && !v.runnable() {
                    v.rate = 0.0;
                }
            }
        }
        self.sched_idx = idx;
        self.sched_reqs = reqs;
        self.sched_rates = rates;
        self.sched_open = open;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hv_one_vm() -> (Hypervisor, DomainId, VcpuId) {
        let mut hv = Hypervisor::new(SchedModel::Fluid);
        let p = hv.add_pcpu();
        let _dom0 = hv.create_domain("dom0", 1 << 20, true);
        let dom = hv.create_domain("vm1", 1 << 20, false);
        let v = hv.add_vcpu(dom, p, SimTime::ZERO).unwrap();
        (hv, dom, v)
    }

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    #[test]
    fn uncapped_job_runs_at_full_speed() {
        let (mut hv, dom, v) = hv_one_vm();
        hv.start_job(v, SimDuration::from_millis(5), 42, SimTime::ZERO)
            .unwrap();
        assert_eq!(hv.next_time(), Some(ms(5)));
        let ev = hv.advance(ms(5));
        assert_eq!(
            ev,
            vec![(
                ms(5),
                HvEvent::JobDone {
                    dom,
                    vcpu: v,
                    tag: 42
                }
            )]
        );
        assert_eq!(hv.mode(v).unwrap(), VcpuMode::Polling);
    }

    #[test]
    fn cap_slows_job_proportionally() {
        let (mut hv, dom, v) = hv_one_vm();
        hv.set_cap(dom, 25, SimTime::ZERO).unwrap();
        hv.start_job(v, SimDuration::from_millis(5), 1, SimTime::ZERO)
            .unwrap();
        // 5 ms of CPU at 25% = 20 ms of wall time.
        assert_eq!(hv.next_time(), Some(ms(20)));
    }

    #[test]
    fn cap_change_mid_job_recomputes() {
        let (mut hv, dom, v) = hv_one_vm();
        hv.start_job(v, SimDuration::from_millis(10), 1, SimTime::ZERO)
            .unwrap();
        // Half done at 5 ms, then capped to 50%: the remaining 5 ms of CPU
        // takes 10 ms of wall time.
        assert!(hv.advance(ms(5)).is_empty());
        hv.set_cap(dom, 50, ms(5)).unwrap();
        assert_eq!(hv.next_time(), Some(ms(15)));
        let ev = hv.advance(ms(15));
        assert_eq!(ev.len(), 1);
    }

    #[test]
    fn uncapping_speeds_up() {
        let (mut hv, dom, v) = hv_one_vm();
        hv.set_cap(dom, 10, SimTime::ZERO).unwrap();
        hv.start_job(v, SimDuration::from_millis(1), 1, SimTime::ZERO)
            .unwrap();
        assert_eq!(hv.next_time(), Some(ms(10)));
        hv.set_cap(dom, 0, ms(5)).unwrap(); // uncap half-way: 0.5ms left
        assert_eq!(hv.next_time(), Some(SimTime::from_micros(5500)));
    }

    #[test]
    fn polling_burns_cpu_without_events() {
        let (mut hv, dom, v) = hv_one_vm();
        hv.set_polling(v, SimTime::ZERO).unwrap();
        assert_eq!(hv.next_time(), None);
        assert!(hv.advance(ms(100)).is_empty());
        let used = hv.cpu_time_used(dom, ms(100)).unwrap();
        assert_eq!(used, SimDuration::from_millis(100));
    }

    #[test]
    fn idle_consumes_nothing() {
        let (mut hv, dom, _v) = hv_one_vm();
        let used = hv.cpu_time_used(dom, ms(50)).unwrap();
        assert_eq!(used, SimDuration::ZERO);
    }

    #[test]
    fn capped_polling_accounts_at_cap() {
        let (mut hv, dom, v) = hv_one_vm();
        hv.set_cap(dom, 40, SimTime::ZERO).unwrap();
        hv.set_polling(v, SimTime::ZERO).unwrap();
        let used = hv.cpu_time_used(dom, ms(100)).unwrap();
        assert_eq!(used, SimDuration::from_millis(40));
    }

    #[test]
    fn two_vms_share_one_pcpu_by_weight() {
        let mut hv = Hypervisor::new(SchedModel::Fluid);
        let p = hv.add_pcpu();
        let _d0 = hv.create_domain("dom0", 1 << 20, true);
        let a = hv.create_domain("a", 1 << 20, false);
        let b = hv.create_domain("b", 1 << 20, false);
        let va = hv.add_vcpu(a, p, SimTime::ZERO).unwrap();
        let vb = hv.add_vcpu(b, p, SimTime::ZERO).unwrap();
        hv.set_weight(a, 100, SimTime::ZERO).unwrap();
        hv.set_weight(b, 300, SimTime::ZERO).unwrap();
        hv.set_polling(va, SimTime::ZERO).unwrap();
        hv.set_polling(vb, SimTime::ZERO).unwrap();
        assert_eq!(
            hv.cpu_time_used(a, ms(100)).unwrap(),
            SimDuration::from_millis(25)
        );
        assert_eq!(
            hv.cpu_time_used(b, ms(100)).unwrap(),
            SimDuration::from_millis(75)
        );
    }

    #[test]
    fn contender_going_idle_frees_capacity() {
        let mut hv = Hypervisor::new(SchedModel::Fluid);
        let p = hv.add_pcpu();
        let _d0 = hv.create_domain("dom0", 1 << 20, true);
        let a = hv.create_domain("a", 1 << 20, false);
        let b = hv.create_domain("b", 1 << 20, false);
        let va = hv.add_vcpu(a, p, SimTime::ZERO).unwrap();
        let vb = hv.add_vcpu(b, p, SimTime::ZERO).unwrap();
        hv.set_polling(va, SimTime::ZERO).unwrap();
        hv.set_polling(vb, SimTime::ZERO).unwrap();
        // Equal shares for 10 ms, then b blocks.
        hv.set_idle(vb, ms(10)).unwrap();
        assert_eq!(
            hv.cpu_time_used(a, ms(20)).unwrap(),
            SimDuration::from_millis(5 + 10),
            "5 ms shared + 10 ms alone"
        );
        assert_eq!(
            hv.cpu_time_used(b, ms(20)).unwrap(),
            SimDuration::from_millis(5)
        );
    }

    #[test]
    fn slice_model_job_completion() {
        let mut hv = Hypervisor::new(SchedModel::Slice {
            period: SimDuration::from_millis(10),
        });
        let p = hv.add_pcpu();
        let _d0 = hv.create_domain("dom0", 1 << 20, true);
        let dom = hv.create_domain("vm", 1 << 20, false);
        let v = hv.add_vcpu(dom, p, SimTime::ZERO).unwrap();
        hv.set_cap(dom, 25, SimTime::ZERO).unwrap();
        hv.start_job(v, SimDuration::from_millis(5), 9, SimTime::ZERO)
            .unwrap();
        // 5 ms of CPU at 2.5 ms per 10 ms window: done at 12.5 ms.
        assert_eq!(hv.next_time(), Some(SimTime::from_micros(12_500)));
        let ev = hv.advance(ms(13));
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].0, SimTime::from_micros(12_500));
    }

    #[test]
    fn slice_model_rejects_overcommit() {
        let mut hv = Hypervisor::new(SchedModel::Slice {
            period: SimDuration::from_millis(10),
        });
        let p = hv.add_pcpu();
        let _d0 = hv.create_domain("dom0", 1 << 20, true);
        let a = hv.create_domain("a", 1 << 20, false);
        let b = hv.create_domain("b", 1 << 20, false);
        hv.add_vcpu(a, p, SimTime::ZERO).unwrap();
        assert!(matches!(
            hv.add_vcpu(b, p, SimTime::ZERO),
            Err(HvError::PcpuOvercommitted(_))
        ));
    }

    #[test]
    fn fluid_and_slice_agree_on_long_run_usage() {
        let run = |model| {
            let mut hv = Hypervisor::new(model);
            let p = hv.add_pcpu();
            let _d0 = hv.create_domain("dom0", 1 << 20, true);
            let dom = hv.create_domain("vm", 1 << 20, false);
            let v = hv.add_vcpu(dom, p, SimTime::ZERO).unwrap();
            hv.set_cap(dom, 30, SimTime::ZERO).unwrap();
            hv.set_polling(v, SimTime::ZERO).unwrap();
            hv.cpu_time_used(dom, SimTime::from_secs(1)).unwrap()
        };
        let fluid = run(SchedModel::Fluid);
        let slice = run(SchedModel::Slice {
            period: SimDuration::from_millis(10),
        });
        assert_eq!(fluid, slice, "both give 300 ms per second at cap 30");
    }

    #[test]
    fn busy_vcpu_rejects_second_job() {
        let (mut hv, _dom, v) = hv_one_vm();
        hv.start_job(v, SimDuration::from_millis(1), 1, SimTime::ZERO)
            .unwrap();
        assert!(matches!(
            hv.start_job(v, SimDuration::from_millis(1), 2, SimTime::ZERO),
            Err(HvError::VcpuBusy(_))
        ));
    }

    #[test]
    fn cap_validation() {
        let (mut hv, dom, _v) = hv_one_vm();
        assert!(hv.set_cap(dom, 101, SimTime::ZERO).is_err());
        assert!(hv.set_cap(dom, 100, SimTime::ZERO).is_ok());
        assert!(hv.set_weight(dom, 0, SimTime::ZERO).is_err());
    }

    #[test]
    fn back_to_back_jobs() {
        let (mut hv, dom, v) = hv_one_vm();
        hv.start_job(v, SimDuration::from_millis(2), 1, SimTime::ZERO)
            .unwrap();
        let ev = hv.advance(ms(2));
        assert_eq!(ev.len(), 1);
        hv.start_job(v, SimDuration::from_millis(3), 2, ms(2))
            .unwrap();
        let ev = hv.advance(ms(5));
        assert_eq!(
            ev,
            vec![(
                ms(5),
                HvEvent::JobDone {
                    dom,
                    vcpu: v,
                    tag: 2
                }
            )]
        );
        // Total CPU: 2 + 3 ms of busy work.
        assert_eq!(
            hv.cpu_time_used(dom, ms(5)).unwrap(),
            SimDuration::from_millis(5)
        );
    }
}

#[cfg(test)]
mod domain_cap_tests {
    use super::*;
    use crate::sched::SchedModel;

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    /// Xen semantics: the cap is a domain budget, split across the
    /// domain's runnable VCPUs.
    #[test]
    fn cap_splits_across_runnable_vcpus() {
        let mut hv = Hypervisor::new(SchedModel::Fluid);
        let p0 = hv.add_pcpu();
        let p1 = hv.add_pcpu();
        let _d0 = hv.create_domain("dom0", 1 << 20, true);
        let dom = hv.create_domain("wide", 1 << 20, false);
        let v0 = hv.add_vcpu(dom, p0, SimTime::ZERO).unwrap();
        let v1 = hv.add_vcpu(dom, p1, SimTime::ZERO).unwrap();
        hv.set_cap(dom, 100, SimTime::ZERO).unwrap();
        hv.set_polling(v0, SimTime::ZERO).unwrap();
        hv.set_polling(v1, SimTime::ZERO).unwrap();
        // 100% budget over two runnable VCPUs → 50% each → 100 ms total
        // CPU time over a 100 ms window.
        let used = hv.cpu_time_used(dom, ms(100)).unwrap();
        assert_eq!(used, SimDuration::from_millis(100));
    }

    #[test]
    fn idle_sibling_frees_the_whole_budget() {
        let mut hv = Hypervisor::new(SchedModel::Fluid);
        let p0 = hv.add_pcpu();
        let p1 = hv.add_pcpu();
        let _d0 = hv.create_domain("dom0", 1 << 20, true);
        let dom = hv.create_domain("wide", 1 << 20, false);
        let v0 = hv.add_vcpu(dom, p0, SimTime::ZERO).unwrap();
        let _v1 = hv.add_vcpu(dom, p1, SimTime::ZERO).unwrap();
        hv.set_cap(dom, 80, SimTime::ZERO).unwrap();
        // Only v0 runs: it may use the domain's whole 80% budget.
        hv.set_polling(v0, SimTime::ZERO).unwrap();
        let used = hv.cpu_time_used(dom, ms(100)).unwrap();
        assert_eq!(used, SimDuration::from_millis(80));
    }

    #[test]
    fn caps_above_100_for_multi_vcpu_domains() {
        let mut hv = Hypervisor::new(SchedModel::Fluid);
        let p0 = hv.add_pcpu();
        let p1 = hv.add_pcpu();
        let _d0 = hv.create_domain("dom0", 1 << 20, true);
        let dom = hv.create_domain("wide", 1 << 20, false);
        let v0 = hv.add_vcpu(dom, p0, SimTime::ZERO).unwrap();
        let v1 = hv.add_vcpu(dom, p1, SimTime::ZERO).unwrap();
        // 150% on a 2-VCPU domain is legal (Xen allows up to vcpus×100)…
        hv.set_cap(dom, 150, SimTime::ZERO).unwrap();
        hv.set_polling(v0, SimTime::ZERO).unwrap();
        hv.set_polling(v1, SimTime::ZERO).unwrap();
        let used = hv.cpu_time_used(dom, ms(100)).unwrap();
        assert_eq!(used, SimDuration::from_millis(150), "75% per VCPU");
        // …but 250% is not.
        assert!(hv.set_cap(dom, 250, SimTime::ZERO).is_err());
    }

    #[test]
    fn single_vcpu_semantics_unchanged() {
        // The paper's configuration must behave exactly as before.
        let mut hv = Hypervisor::new(SchedModel::Fluid);
        let p = hv.add_pcpu();
        let _d0 = hv.create_domain("dom0", 1 << 20, true);
        let dom = hv.create_domain("vm", 1 << 20, false);
        let v = hv.add_vcpu(dom, p, SimTime::ZERO).unwrap();
        hv.set_cap(dom, 25, SimTime::ZERO).unwrap();
        hv.set_polling(v, SimTime::ZERO).unwrap();
        assert_eq!(
            hv.cpu_time_used(dom, ms(100)).unwrap(),
            SimDuration::from_millis(25)
        );
    }
}
