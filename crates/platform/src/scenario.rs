//! Scenario configuration: declarative descriptions of the paper's
//! experimental setups, turned into a running [`World`](crate::World).
//!
//! Terminology follows the paper: a VM is named by its configured buffer
//! size ("64KB VM", "2MB VM"); the *reporting* VM is the latency-sensitive
//! one; an *interfering* VM has a larger buffer. The canonical testbed is
//! two physical machines — servers (and dom0 with ResEx/IBMon) on one,
//! clients on the other.

use resex_adversary::AdversarySpec;
use resex_benchex::{ClientMode, ClientTuning, ServerConfig, TraceProfile};
use resex_core::{ResExConfig, SlaTarget};
use resex_fabric::{FabricConfig, Topology};
use resex_faults::FaultSchedule;
use resex_hypervisor::SchedModel;
use resex_simcore::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Which pricing policy manages the run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Unmanaged (the paper's "base"/"interfered" runs).
    None,
    /// FreeMarket (Algorithm 1).
    FreeMarket,
    /// IOShares (Algorithm 2); SLAs come from each VM's `sla` field.
    IoShares,
    /// Fixed caps per VM index.
    StaticReserve(Vec<(usize, u32)>),
    /// Buffer-ratio caps relative to the VM at `reference` index.
    BufferRatio {
        /// Index of the reporting VM.
        reference: usize,
    },
    /// Uniform demand-driven epoch pricing (goal 1, purest form).
    DemandPricing,
}

/// Hardware QoS assigned to a VM's queue pair at the HCA — the alternative
/// isolation lever the paper mentions newer cards support.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QosSpec {
    /// Strict priority level (lower = served first; default 0).
    pub priority: u8,
    /// Weighted-round-robin weight within the level (default 1).
    pub weight: u32,
    /// Egress bandwidth cap in bytes/second (None = unlimited).
    pub rate_limit: Option<u64>,
}

/// One server VM (plus its dedicated client on the client machine).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VmSpec {
    /// Display name; by convention the buffer size ("64KB").
    pub name: String,
    /// Response buffer size in bytes.
    pub buffer_size: u32,
    /// Workload trace for this VM's client.
    pub trace: TraceProfile,
    /// Client behaviour.
    pub client_mode: ClientMode,
    /// Initial CPU cap (0 = uncapped), for the static-cap experiments
    /// (Figures 3 and 4).
    pub initial_cap: u32,
    /// SLA for IOShares (reporting VMs only).
    pub sla: Option<SlaTarget>,
    /// Reso share weight.
    pub weight: u32,
    /// Hardware QoS for this VM's egress flow (None = default best-effort).
    pub qos: Option<QosSpec>,
    /// SLO latency threshold in µs for violation tracking (absent in
    /// older scenario files = derive from `sla` when present, else none).
    /// Pure observation — never feeds back into scheduling.
    #[serde(default)]
    pub slo_us: Option<f64>,
}

impl VmSpec {
    /// A standard latency-sensitive server VM with the given buffer size.
    pub fn server(name: impl Into<String>, buffer_size: u32) -> Self {
        VmSpec {
            name: name.into(),
            buffer_size,
            trace: TraceProfile::uniform_quotes(8),
            client_mode: ClientMode::ClosedLoop {
                think: SimDuration::from_micros(40),
            },
            initial_cap: 0,
            sla: None,
            weight: 1,
            qos: None,
            slo_us: None,
        }
    }

    /// Attaches an SLA (makes this a reporting VM under IOShares).
    pub fn with_sla(mut self, base_mean_us: f64, base_std_us: f64) -> Self {
        self.sla = Some(SlaTarget {
            base_mean_us,
            base_std_us,
        });
        self
    }

    /// Sets an initial static cap.
    pub fn with_cap(mut self, cap: u32) -> Self {
        self.initial_cap = cap;
        self
    }

    /// Replaces the client mode.
    pub fn with_client(mut self, mode: ClientMode) -> Self {
        self.client_mode = mode;
        self
    }

    /// Installs hardware QoS for this VM's egress flow.
    pub fn with_qos(mut self, qos: QosSpec) -> Self {
        self.qos = Some(qos);
        self
    }

    /// Sets an explicit SLO latency threshold (µs) for violation tracking.
    pub fn with_slo(mut self, threshold_us: f64) -> Self {
        self.slo_us = Some(threshold_us);
        self
    }
}

/// Observability switches. Both default to off, which costs ~nothing (a
/// disabled tracer is one branch per would-be event). Turning either on
/// does not perturb simulated time: the same seed produces the same
/// results — and the same bytes of trace/metrics output — either way.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsOptions {
    /// Record structured trace events (exported as Chrome trace JSON).
    #[serde(default)]
    pub trace: bool,
    /// Record per-interval per-VM metric snapshots (exported as JSONL).
    #[serde(default)]
    pub metrics: bool,
    /// Profile the event loop itself (wall-clock self-time per event
    /// type, calendar sizes, allocation counts). Also forced on for every
    /// run while `resex_obs::profiler::global_enabled()` is set.
    #[serde(default)]
    pub profile: bool,
    /// Retain raw post-warmup latency records per VM (unbounded memory;
    /// for exact-percentile tests and offline tools).
    #[serde(default)]
    pub keep_records: bool,
}

impl ObsOptions {
    /// True if any recording is requested.
    pub fn any(self) -> bool {
        self.trace || self.metrics
    }
}

/// A full experiment description (JSON-serializable; see the `simulate`
/// binary in `resex-bench` for file-driven runs).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Human-readable label (appears in output).
    pub label: String,
    /// Server VMs (index order is VM id order).
    pub vms: Vec<VmSpec>,
    /// Fabric parameters.
    pub fabric: FabricConfig,
    /// Scheduler model.
    pub sched: SchedModel,
    /// ResEx parameters (ignored when `policy == None`).
    pub resex: ResExConfig,
    /// Active policy.
    pub policy: PolicyKind,
    /// Base server configuration (buffer size overridden per VM).
    pub server: ServerConfig,
    /// Simulated run length.
    pub duration: SimDuration,
    /// Initial span excluded from summaries.
    pub warmup: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Observability switches (absent in older scenario files = off).
    #[serde(default)]
    pub obs: ObsOptions,
    /// Deterministic fault schedule (absent in older scenario files = no
    /// faults; an all-zero schedule is never installed, so such runs stay
    /// byte-identical to fault-unaware builds).
    #[serde(default)]
    pub faults: FaultSchedule,
    /// Antagonist-tenant spec (absent in older scenario files = no
    /// adversaries; a disabled spec is never installed, so such runs stay
    /// byte-identical to adversary-unaware builds).
    #[serde(default)]
    pub adversary: AdversarySpec,
    /// Client recovery knobs (absent in older scenario files = the
    /// historical constants: 10 ms request timeout, 16-retry budget).
    #[serde(default)]
    pub client_tuning: ClientTuning,
    /// Where this scenario's host pair sits (absent in older scenario
    /// files = the historical single-crossbar model, which changes
    /// nothing). A rack placement replaces the crossbar's switch+wire
    /// latency with the routed path's per-hop accumulation.
    #[serde(default)]
    pub topology: Topology,
}

/// The paper's canonical 64 KiB baseline latency, used as the default SLA.
pub const BASE_LATENCY_US: f64 = 209.0;

impl ScenarioConfig {
    /// A solo reporting VM — the paper's "base case".
    pub fn base_case(buffer_size: u32) -> Self {
        ScenarioConfig {
            label: format!("base-{}", fmt_size(buffer_size)),
            vms: vec![VmSpec::server(fmt_size(buffer_size), buffer_size)],
            fabric: FabricConfig::default(),
            sched: SchedModel::Fluid,
            resex: ResExConfig::default(),
            policy: PolicyKind::None,
            server: ServerConfig::default(),
            duration: SimDuration::from_secs(5),
            warmup: SimDuration::from_millis(200),
            seed: 42,
            obs: ObsOptions::default(),
            faults: FaultSchedule::default(),
            adversary: AdversarySpec::default(),
            client_tuning: ClientTuning::default(),
            topology: Topology::Crossbar,
        }
    }

    /// The canonical two-VM setup: a 64 KiB reporting VM plus an
    /// interferer with the given buffer size, unmanaged.
    pub fn interfered(intf_buffer: u32) -> Self {
        let mut cfg = ScenarioConfig::base_case(64 * 1024);
        cfg.label = format!("interfered-{}", fmt_size(intf_buffer));
        cfg.vms[0] = cfg.vms[0].clone().with_sla(BASE_LATENCY_US, 2.0);
        cfg.vms
            .push(VmSpec::server(fmt_size(intf_buffer), intf_buffer));
        cfg
    }

    /// The two-VM setup under a pricing policy.
    pub fn managed(intf_buffer: u32, policy: PolicyKind) -> Self {
        let mut cfg = ScenarioConfig::interfered(intf_buffer);
        cfg.label = format!("{:?}-{}", policy_tag(&policy), fmt_size(intf_buffer));
        cfg.policy = policy;
        cfg
    }

    /// A reporting VM plus `n_attackers` identically-sized interferers —
    /// the canonical setup for the adversarial-tenant experiments (the
    /// attackers masquerade as honest interferers; [`AdversarySpec`]
    /// decides which of them actually attack, and how). VM 0 is the
    /// reporter; VMs `1..=n_attackers` are the interferer slots.
    pub fn adversarial(intf_buffer: u32, n_attackers: usize, policy: PolicyKind) -> Self {
        assert!(n_attackers >= 1, "at least one interferer slot");
        let mut cfg = ScenarioConfig::interfered(intf_buffer);
        for k in 1..n_attackers {
            cfg.vms.push(VmSpec::server(
                format!("{}#{}", fmt_size(intf_buffer), k + 1),
                intf_buffer,
            ));
        }
        cfg.label = format!(
            "adversarial-{}x{}-{}",
            n_attackers,
            fmt_size(intf_buffer),
            policy_tag(&policy)
        );
        cfg.policy = policy;
        cfg
    }

    /// Validates the scenario.
    pub fn validate(&self) -> Result<(), String> {
        if self.vms.is_empty() {
            return Err("at least one VM required".into());
        }
        self.fabric.validate()?;
        self.topology.validate()?;
        self.resex.validate()?;
        self.adversary
            .validate_for(self.vms.len())
            .map_err(|e| e.to_string())?;
        if self.warmup.as_nanos() >= self.duration.as_nanos() {
            return Err("warmup must be shorter than the run".into());
        }
        if let PolicyKind::BufferRatio { reference } = self.policy {
            if reference >= self.vms.len() {
                return Err("BufferRatio reference out of range".into());
            }
        }
        Ok(())
    }
}

/// Formats a byte count the way the paper names VMs ("64KB", "2MB").
pub fn fmt_size(bytes: u32) -> String {
    if bytes >= 1024 * 1024 && bytes.is_multiple_of(1024 * 1024) {
        format!("{}MB", bytes / (1024 * 1024))
    } else if bytes >= 1024 && bytes.is_multiple_of(1024) {
        format!("{}KB", bytes / 1024)
    } else {
        format!("{bytes}B")
    }
}

fn policy_tag(p: &PolicyKind) -> &'static str {
    match p {
        PolicyKind::None => "none",
        PolicyKind::FreeMarket => "freemarket",
        PolicyKind::IoShares => "ioshares",
        PolicyKind::StaticReserve(_) => "static",
        PolicyKind::BufferRatio { .. } => "bufferratio",
        PolicyKind::DemandPricing => "demand",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_formatting() {
        assert_eq!(fmt_size(64 * 1024), "64KB");
        assert_eq!(fmt_size(2 * 1024 * 1024), "2MB");
        assert_eq!(fmt_size(1500), "1500B");
    }

    #[test]
    fn canonical_scenarios_validate() {
        assert!(ScenarioConfig::base_case(64 * 1024).validate().is_ok());
        assert!(ScenarioConfig::interfered(2 * 1024 * 1024)
            .validate()
            .is_ok());
        assert!(
            ScenarioConfig::managed(2 * 1024 * 1024, PolicyKind::IoShares)
                .validate()
                .is_ok()
        );
    }

    #[test]
    fn interfered_has_reporting_sla() {
        let cfg = ScenarioConfig::interfered(2 * 1024 * 1024);
        assert_eq!(cfg.vms.len(), 2);
        assert!(cfg.vms[0].sla.is_some());
        assert!(cfg.vms[1].sla.is_none());
        assert_eq!(cfg.vms[1].name, "2MB");
    }

    #[test]
    fn validation_catches_bad_reference() {
        let mut cfg = ScenarioConfig::interfered(131072);
        cfg.policy = PolicyKind::BufferRatio { reference: 9 };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn adversarial_builder_adds_interferer_slots() {
        let cfg = ScenarioConfig::adversarial(2 * 1024 * 1024, 3, PolicyKind::IoShares);
        assert_eq!(cfg.vms.len(), 4);
        assert!(cfg.vms[0].sla.is_some(), "VM 0 stays the reporter");
        assert_eq!(cfg.vms[1].name, "2MB");
        assert_eq!(cfg.vms[2].name, "2MB#2");
        assert_eq!(cfg.vms[3].name, "2MB#3");
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_catches_out_of_range_attackers() {
        let mut cfg = ScenarioConfig::interfered(2 * 1024 * 1024);
        cfg.adversary =
            resex_adversary::AdversarySpec::parse("class=collude,attackers=1+2").unwrap();
        let err = cfg.validate().unwrap_err();
        assert!(err.contains("does not exist"), "typed wiring error: {err}");
        // A matching 3-VM scenario accepts the same spec.
        let mut cfg = ScenarioConfig::adversarial(2 * 1024 * 1024, 2, PolicyKind::None);
        cfg.adversary =
            resex_adversary::AdversarySpec::parse("class=collude,attackers=1+2").unwrap();
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_catches_long_warmup() {
        let mut cfg = ScenarioConfig::base_case(65536);
        cfg.warmup = cfg.duration;
        assert!(cfg.validate().is_err());
    }
}
