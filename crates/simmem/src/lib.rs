#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # resex-simmem — simulated guest physical memory
//!
//! Models the memory substrate that makes both VMM-bypass I/O and IBMon-style
//! introspection possible:
//!
//! * Each simulated domain owns a [`GuestMemory`]: a demand-allocated array of
//!   4 KiB pages addressed by guest-physical address ([`Gpa`]).
//! * The HCA "DMAs" into guest memory through [`MemoryHandle::dma_write`],
//!   which — exactly like real RDMA — requires the target pages to be
//!   **pinned** (registered with the HCA and locked against paging).
//! * dom0 tooling maps another domain's pages with [`ForeignMapping`], the
//!   simulated analogue of Xen's `xc_map_foreign_range`. IBMon reads the very
//!   bytes the HCA wrote; there is no side channel.
//!
//! Handles are `Arc<RwLock<…>>`-based so a single simulated address space can
//! be shared by the guest application, the HCA engine, and the monitor while
//! experiments run on independent threads (parameter sweeps use rayon).

pub mod error;
pub mod mapping;
pub mod memory;

pub use error::MemError;
pub use mapping::ForeignMapping;
pub use memory::{Gpa, GuestMemory, MemoryHandle, PAGE_SIZE};
