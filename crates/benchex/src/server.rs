//! The BenchEx trading server.
//!
//! A strictly FCFS request loop, as the paper requires ("each transaction
//! may change the outcome of the next one"):
//!
//! ```text
//! poll CQ ──(request)──▶ compute pricing ──▶ post RDMA response ──▶
//!   ▲                                                        │
//!   └──────────────(send completion)──────────────────────────┘
//! ```
//!
//! The server is a pure state machine: the platform feeds it events
//! (request arrival, compute done, send completion) and executes the
//! [`ServerAction`]s it returns (start a VCPU job, post a work request).
//! This keeps BenchEx independent of how the fabric and hypervisor are
//! wired and makes every transition unit-testable.

use crate::latency::{LatencyRecord, LatencyWindow};
use crate::request::TransactionRequest;
use resex_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Server tuning parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Response buffer size in bytes — *the* experimental knob. A "64KB VM"
    /// is a VM whose server uses 64 KiB responses.
    pub buffer_size: u32,
    /// Simulated CPU time per work unit of the pricing task.
    pub cpu_per_work_unit: SimDuration,
    /// Fixed CPU overhead per request (syscall-free verbs path, queue
    /// bookkeeping).
    pub per_request_overhead: SimDuration,
    /// Cost of one successful CQ poll (added to PTime even when a request
    /// is already queued).
    pub poll_overhead: SimDuration,
    /// Whether to actually run the pricing math (results ride in the
    /// response). Disable only for huge throughput sweeps.
    pub execute_tasks: bool,
    /// Capacity of the latency window the reporting agent reads.
    pub latency_window: usize,
    /// Scale each response to its transaction's batch size instead of
    /// always padding to `buffer_size` (`len = n_options ×`
    /// [`RESPONSE_BYTES_PER_OPTION`], capped at `buffer_size`). Off for
    /// every honest VM — the paper's fixed-cost workload pads every
    /// response — and switched on only for telemetry-poisoning antagonists,
    /// whose guest deliberately mixes huge and minimal responses to bias
    /// ring-scan monitoring.
    #[serde(default)]
    pub variable_responses: bool,
}

/// Response bytes per batched option when
/// [`ServerConfig::variable_responses`] is on.
pub const RESPONSE_BYTES_PER_OPTION: u32 = 2048;

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            buffer_size: 64 * 1024,
            // Calibrated so a default Quote×8 task ≈ 100 µs of CPU, matching
            // the paper's ~209 µs total with 64 KiB responses.
            cpu_per_work_unit: SimDuration::from_micros(12),
            per_request_overhead: SimDuration::from_micros(4),
            poll_overhead: SimDuration::from_micros(2),
            execute_tasks: true,
            latency_window: 4096,
            variable_responses: false,
        }
    }
}

/// What the platform must do next on the server's behalf.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerAction {
    /// Run a compute job of the given CPU time on the server's VCPU.
    StartCompute {
        /// CPU time the pricing work needs.
        cpu_time: SimDuration,
    },
    /// Post the RDMA response of `len` bytes to the request's client.
    PostResponse {
        /// Response length (the configured buffer size).
        len: u32,
        /// Which client to respond to.
        client_id: u32,
        /// Echoed request id.
        request_id: u64,
    },
    /// Nothing to do; the server is polling for the next request.
    Idle,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Spinning on the CQ.
    Polling,
    /// Pricing a transaction.
    Computing,
    /// Waiting for the response's send completion.
    Sending,
}

struct InService {
    req: TransactionRequest,
    ptime: SimDuration,
    compute_started: SimTime,
    ctime: SimDuration,
    send_posted: SimTime,
}

/// The FCFS trading server.
pub struct Server {
    cfg: ServerConfig,
    state: State,
    queue: VecDeque<(TransactionRequest, SimTime)>,
    ready_since: SimTime,
    in_service: Option<InService>,
    /// Recent latency records (read by the reporting agent).
    pub window: LatencyWindow,
    served: u64,
    /// Sum of executed task values (checksum output, keeps the math live).
    pub value_checksum: f64,
}

impl Server {
    /// Creates an idle server.
    pub fn new(cfg: ServerConfig) -> Self {
        Server {
            window: LatencyWindow::new(cfg.latency_window),
            cfg,
            state: State::Polling,
            queue: VecDeque::new(),
            ready_since: SimTime::ZERO,
            in_service: None,
            served: 0,
            value_checksum: 0.0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Requests served to completion.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Requests queued but not yet in service.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// A request arrived (its receive completion was polled).
    pub fn on_request(&mut self, req: TransactionRequest, now: SimTime) -> ServerAction {
        self.queue.push_back((req, now));
        if self.state == State::Polling {
            self.dequeue_next(now)
        } else {
            ServerAction::Idle
        }
    }

    /// The compute job finished.
    ///
    /// # Panics
    /// If the server was not computing (platform wiring bug).
    pub fn on_compute_done(&mut self, now: SimTime) -> ServerAction {
        assert_eq!(
            self.state,
            State::Computing,
            "compute-done while {:?}",
            self.state
        );
        let svc = self.in_service.as_mut().expect("in service");
        svc.ctime = now.duration_since(svc.compute_started);
        svc.send_posted = now;
        if self.cfg.execute_tasks {
            self.value_checksum += svc.req.task.execute().value_sum;
        }
        self.state = State::Sending;
        let len = if self.cfg.variable_responses {
            (svc.req.task.n_options)
                .saturating_mul(RESPONSE_BYTES_PER_OPTION)
                .min(self.cfg.buffer_size)
        } else {
            self.cfg.buffer_size
        };
        ServerAction::PostResponse {
            len,
            client_id: svc.req.client_id,
            request_id: svc.req.id,
        }
    }

    /// The response's send completion arrived.
    ///
    /// # Panics
    /// If the server was not sending (platform wiring bug).
    pub fn on_send_complete(&mut self, now: SimTime) -> ServerAction {
        self.on_send_complete_with_record(now).1
    }

    /// Like [`Server::on_send_complete`], but also returns the completed
    /// request's latency record (the platform feeds it to run metrics; the
    /// same record lands in [`Server::window`] for the agent).
    pub fn on_send_complete_with_record(&mut self, now: SimTime) -> (LatencyRecord, ServerAction) {
        assert_eq!(
            self.state,
            State::Sending,
            "send-complete while {:?}",
            self.state
        );
        let svc = self.in_service.take().expect("in service");
        let wtime = now.duration_since(svc.send_posted);
        let record = LatencyRecord {
            at: now,
            request_id: svc.req.id,
            ptime: svc.ptime,
            ctime: svc.ctime,
            wtime,
        };
        self.window.push(record);
        self.served += 1;
        self.state = State::Polling;
        self.ready_since = now;
        (record, self.dequeue_next(now))
    }

    /// The VM died: every queued and in-service request vanishes with the
    /// guest's memory. The server restarts in `Polling` as if freshly
    /// booted (the platform gates any stray compute/send completions for
    /// the dead incarnation, so the FCFS state machine never sees them).
    /// Served counts, the latency window, and the checksum survive —
    /// they model dom0-side accounting, not guest state.
    pub fn crash(&mut self, now: SimTime) {
        self.queue.clear();
        self.in_service = None;
        self.state = State::Polling;
        self.ready_since = now;
    }

    /// True while a response send is posted and awaiting its completion.
    /// The platform uses this to discard stray completions for sends that
    /// were posted before a crash wiped the guest.
    pub fn awaiting_send(&self) -> bool {
        self.state == State::Sending
    }

    /// Pops the next queued request into service, if any.
    fn dequeue_next(&mut self, now: SimTime) -> ServerAction {
        let (req, _arrival) = match self.queue.pop_front() {
            Some(x) => x,
            None => return ServerAction::Idle,
        };
        // PTime: how long the server spun on the CQ before this request was
        // returned by a poll, plus the cost of the successful poll itself.
        let ptime = now.duration_since(self.ready_since) + self.cfg.poll_overhead;
        let cpu_time =
            self.cfg.per_request_overhead + self.cfg.cpu_per_work_unit * req.task.work_estimate();
        self.in_service = Some(InService {
            req,
            ptime,
            compute_started: now,
            ctime: SimDuration::ZERO,
            send_posted: now,
        });
        self.state = State::Computing;
        ServerAction::StartCompute { cpu_time }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resex_finance::{PricingTask, TaskKind};

    fn req(id: u64) -> TransactionRequest {
        TransactionRequest {
            id,
            client_id: 3,
            sent_at: SimTime::ZERO,
            task: PricingTask {
                kind: TaskKind::Quote,
                n_options: 8,
                seed: id,
            },
        }
    }

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn request_triggers_compute_with_scaled_cpu() {
        let mut s = Server::new(ServerConfig::default());
        let a = s.on_request(req(1), us(100));
        match a {
            ServerAction::StartCompute { cpu_time } => {
                // 8 quote units × 12 µs + 4 µs overhead = 100 µs.
                assert_eq!(cpu_time, SimDuration::from_micros(100));
            }
            other => panic!("expected compute, got {other:?}"),
        }
    }

    #[test]
    fn full_request_lifecycle_records_decomposition() {
        let mut s = Server::new(ServerConfig::default());
        // Server idle since t=0; request arrives at t=40µs.
        assert!(matches!(
            s.on_request(req(1), us(40)),
            ServerAction::StartCompute { .. }
        ));
        // Compute finishes at t=140µs.
        let a = s.on_compute_done(us(140));
        assert_eq!(
            a,
            ServerAction::PostResponse {
                len: 64 * 1024,
                client_id: 3,
                request_id: 1
            }
        );
        // Send completion at t=204µs.
        assert_eq!(s.on_send_complete(us(204)), ServerAction::Idle);
        assert_eq!(s.served(), 1);
        let rec = s.window.since(SimTime::ZERO).next().unwrap();
        assert_eq!(rec.ptime, SimDuration::from_micros(42), "40 idle + 2 poll");
        assert_eq!(rec.ctime, SimDuration::from_micros(100));
        assert_eq!(rec.wtime, SimDuration::from_micros(64));
        assert_eq!(rec.total(), SimDuration::from_micros(206));
    }

    #[test]
    fn fcfs_order_is_preserved() {
        let mut s = Server::new(ServerConfig::default());
        s.on_request(req(1), us(0));
        // Two more arrive while computing.
        assert_eq!(s.on_request(req(2), us(1)), ServerAction::Idle);
        assert_eq!(s.on_request(req(3), us(2)), ServerAction::Idle);
        assert_eq!(s.backlog(), 2);
        s.on_compute_done(us(100));
        // Completing request 1 immediately dequeues request 2.
        let a = s.on_send_complete(us(160));
        assert!(matches!(a, ServerAction::StartCompute { .. }));
        s.on_compute_done(us(260));
        s.on_send_complete(us(320));
        let ids: Vec<u64> = s
            .window
            .since(SimTime::ZERO)
            .map(|r| r.request_id)
            .collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(s.backlog(), 0, "request 3 is now in service");
    }

    #[test]
    fn queued_request_has_minimal_ptime() {
        let mut s = Server::new(ServerConfig::default());
        s.on_request(req(1), us(0));
        s.on_request(req(2), us(1));
        s.on_compute_done(us(100));
        s.on_send_complete(us(160));
        s.on_compute_done(us(260));
        s.on_send_complete(us(320));
        let recs: Vec<_> = s.window.since(SimTime::ZERO).collect();
        // Request 2 was already queued when the server became ready.
        assert_eq!(
            recs[1].ptime,
            SimDuration::from_micros(2),
            "just the poll cost"
        );
    }

    #[test]
    fn variable_responses_scale_with_the_batch() {
        let cfg = ServerConfig {
            variable_responses: true,
            ..ServerConfig::default()
        };
        let mut s = Server::new(cfg);
        // Batch-1 task: a minimal response, not the padded buffer.
        let tiny = TransactionRequest {
            task: PricingTask {
                kind: TaskKind::Quote,
                n_options: 1,
                seed: 0,
            },
            ..req(1)
        };
        s.on_request(tiny, us(0));
        match s.on_compute_done(us(20)) {
            ServerAction::PostResponse { len, .. } => {
                assert_eq!(len, RESPONSE_BYTES_PER_OPTION);
            }
            other => panic!("expected response, got {other:?}"),
        }
        s.on_send_complete(us(30));
        // Huge batch: capped at the configured buffer size.
        let big = TransactionRequest {
            task: PricingTask {
                kind: TaskKind::Quote,
                n_options: 10_000,
                seed: 0,
            },
            ..req(2)
        };
        s.on_request(big, us(40));
        match s.on_compute_done(us(50)) {
            ServerAction::PostResponse { len, .. } => {
                assert_eq!(len, 64 * 1024, "capped at buffer_size");
            }
            other => panic!("expected response, got {other:?}"),
        }
    }

    #[test]
    fn heavier_tasks_compute_longer() {
        let mut s = Server::new(ServerConfig::default());
        let heavy = TransactionRequest {
            task: PricingTask {
                kind: TaskKind::Risk,
                n_options: 8,
                seed: 0,
            },
            ..req(1)
        };
        match s.on_request(heavy, us(0)) {
            ServerAction::StartCompute { cpu_time } => {
                // Risk = 3 units/option: 24 × 12 + 4 = 292 µs.
                assert_eq!(cpu_time, SimDuration::from_micros(292));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn checksum_accumulates_when_executing() {
        let mut s = Server::new(ServerConfig::default());
        s.on_request(req(1), us(0));
        s.on_compute_done(us(100));
        s.on_send_complete(us(160));
        assert!(s.value_checksum != 0.0, "pricing math actually ran");
    }

    #[test]
    #[should_panic]
    fn compute_done_while_polling_is_a_bug() {
        let mut s = Server::new(ServerConfig::default());
        s.on_compute_done(us(1));
    }

    #[test]
    fn crash_drops_all_in_flight_work_and_restarts_polling() {
        let mut s = Server::new(ServerConfig::default());
        s.on_request(req(1), us(0));
        s.on_request(req(2), us(1));
        assert_eq!(s.backlog(), 1);
        s.crash(us(50));
        assert_eq!(s.backlog(), 0, "queued requests die with the guest");
        // A fresh request after the restart runs the normal lifecycle.
        assert!(matches!(
            s.on_request(req(3), us(60)),
            ServerAction::StartCompute { .. }
        ));
        s.on_compute_done(us(160));
        s.on_send_complete(us(220));
        assert_eq!(s.served(), 1, "only the post-restart request completed");
        let rec = s.window.since(SimTime::ZERO).next().unwrap();
        assert_eq!(
            rec.ptime,
            SimDuration::from_micros(12),
            "ptime counts from the restart instant (50→60) plus the poll"
        );
    }
}
