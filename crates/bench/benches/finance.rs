//! Micro-benchmarks of the financial library — BenchEx's per-request
//! compute kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use resex_finance::{
    crr_price, implied_vol, mc_price, Exercise, OptionKind, OptionSpec, PricingTask, TaskKind,
};
use std::hint::black_box;

fn spec() -> OptionSpec {
    OptionSpec {
        kind: OptionKind::Call,
        spot: 100.0,
        strike: 105.0,
        rate: 0.05,
        sigma: 0.25,
        expiry: 0.75,
    }
}

fn bench_black_scholes(c: &mut Criterion) {
    let s = spec();
    c.bench_function("bs/price", |b| b.iter(|| black_box(s.price())));
    c.bench_function("bs/greeks", |b| b.iter(|| black_box(s.greeks())));
    let price = s.price();
    c.bench_function("bs/implied_vol", |b| {
        b.iter(|| black_box(implied_vol(&s, price).unwrap()))
    });
}

fn bench_binomial(c: &mut Criterion) {
    let mut g = c.benchmark_group("crr");
    let s = spec();
    for steps in [32u32, 128, 512] {
        g.bench_with_input(BenchmarkId::new("american", steps), &steps, |b, &steps| {
            b.iter(|| black_box(crr_price(&s, steps, Exercise::American)))
        });
    }
    g.finish();
}

fn bench_monte_carlo(c: &mut Criterion) {
    let mut g = c.benchmark_group("monte_carlo");
    let s = spec();
    for paths in [1_000u32, 10_000, 100_000] {
        g.bench_with_input(BenchmarkId::new("paths", paths), &paths, |b, &paths| {
            b.iter(|| black_box(mc_price(&s, paths, 42)))
        });
    }
    g.finish();
}

fn bench_tasks(c: &mut Criterion) {
    let mut g = c.benchmark_group("pricing_task");
    for (name, kind) in [
        ("quote", TaskKind::Quote),
        ("risk", TaskKind::Risk),
        ("reprice64", TaskKind::Reprice { steps: 64 }),
        ("implied", TaskKind::ImpliedVol),
    ] {
        let task = PricingTask {
            kind,
            n_options: 8,
            seed: 42,
        };
        g.bench_function(name, |b| b.iter(|| black_box(task.execute())));
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_black_scholes,
    bench_binomial,
    bench_monte_carlo,
    bench_tasks
);
criterion_main!(benches);
