//! The write-ahead decision journal.
//!
//! The manager's pricing loop is a single point of failure: its in-memory
//! state (accounts, policy internals, stale-telemetry bases) dies with it.
//! The journal is the part that survives — an append-only log of what the
//! manager *decided*: which VMs were admitted at what weight, and after
//! every charging interval, each VM's full account (balances, allocations,
//! debt) plus the cap it was assigned. A restarted manager replays the log
//! to rebuild its books exactly, then runs a catch-up settlement over the
//! intervals it slept through so the Reso supply stays conserved across
//! the outage. Policy-internal state is deliberately *not* journaled:
//! losing it is the damage a crash models.

use crate::account::ResoAccount;
use crate::pricing::VmId;
use serde::{Deserialize, Serialize};

/// One VM's entry in an interval record: the account exactly as it stood
/// after the interval's charges, and the cap the policy assigned (if any).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct IntervalEntry {
    /// The VM.
    pub vm: VmId,
    /// The account after this interval's charges (balances can be
    /// negative: overdrafts are the journal's debt records).
    pub account: ResoAccount,
    /// The cap actuation issued this interval, if the policy set one.
    pub cap_pct: Option<u32>,
}

/// One append-only journal record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum JournalRecord {
    /// A VM was admitted (or re-admitted) at the given share weight.
    Register {
        /// The VM.
        vm: VmId,
        /// Its share weight.
        weight: u32,
    },
    /// One charging interval settled.
    Interval {
        /// The interval's index (monotone).
        index: u64,
        /// True if this interval opened a new epoch.
        epoch_started: bool,
        /// Per-VM accounts and caps, sorted by [`VmId`].
        entries: Vec<IntervalEntry>,
    },
}

/// The append-only decision journal. In this reproduction it lives in
/// memory on the world side of the manager boundary — the point is not
/// durability of bytes but the *recovery protocol*: everything a restarted
/// manager needs must flow through here and nothing else.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DecisionJournal {
    records: Vec<JournalRecord>,
}

impl DecisionJournal {
    /// An empty journal.
    pub fn new() -> Self {
        DecisionJournal::default()
    }

    /// Appends one record.
    pub fn append(&mut self, rec: JournalRecord) {
        self.records.push(rec);
    }

    /// All records, oldest first.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The index of the most recently journaled interval, if any.
    pub fn last_interval_index(&self) -> Option<u64> {
        self.records.iter().rev().find_map(|r| match r {
            JournalRecord::Interval { index, .. } => Some(*index),
            _ => None,
        })
    }

    /// The most recently journaled account for `vm`, if any interval
    /// recorded it. This funds a crashed VM's re-admission.
    pub fn last_balance(&self, vm: VmId) -> Option<ResoAccount> {
        self.records.iter().rev().find_map(|r| match r {
            JournalRecord::Interval { entries, .. } => {
                entries.iter().find(|e| e.vm == vm).map(|e| e.account)
            }
            _ => None,
        })
    }
}
