//! Figure 9 — FreeMarket and IOShares vs interfering buffer size.
//!
//! Paper: "IOShares outperforms FreeMarket by maintaining the average
//! latency very close to the base value" across interferer buffer sizes
//! 64 KiB – 1 MiB; FreeMarket is work-conserving but "does not limit the
//! latency since it does not have access to that information."

use crate::experiments::{mean_std, p99_us, slo_violation_pct, Scale};
use crate::metrics::{AdversaryTotals, CrashTotals, RecoveryTotals};
use crate::scenario::{fmt_size, PolicyKind, ScenarioConfig};
use crate::world::run_scenario;
use rayon::prelude::*;
use serde::Serialize;

/// One x-axis group.
#[derive(Clone, Debug, Serialize)]
pub struct Fig9Row {
    /// Interferer buffer size label.
    pub buffer: String,
    /// Base (solo) latency, µs.
    pub base_us: f64,
    /// Unmanaged interfered latency, µs (context; not in the paper's plot).
    pub interfered_us: f64,
    /// FreeMarket latency, µs.
    pub freemarket_us: f64,
    /// IOShares latency, µs.
    pub ioshares_us: f64,
    /// Base (solo) p99 latency, µs.
    pub base_p99_us: f64,
    /// Unmanaged interfered p99 latency, µs.
    pub interfered_p99_us: f64,
    /// FreeMarket p99 latency, µs.
    pub freemarket_p99_us: f64,
    /// IOShares p99 latency, µs.
    pub ioshares_p99_us: f64,
    /// FreeMarket SLO-violation percentage (threshold 2× base SLA mean).
    pub freemarket_slo_pct: f64,
    /// IOShares SLO-violation percentage (same threshold).
    pub ioshares_slo_pct: f64,
}

/// The full figure.
#[derive(Clone, Debug)]
pub struct Fig9Result {
    /// One row per interferer buffer size.
    pub rows: Vec<Fig9Row>,
    /// What the self-healing layer did across every run of the figure.
    /// All-zero in clean runs.
    pub recovery: RecoveryTotals,
    /// What the antagonist plane did across every run of the figure.
    /// All-zero in adversary-off runs.
    pub adversary: AdversaryTotals,
    /// What the crash plane did across every run of the figure.
    /// All-zero in crash-free runs.
    pub crashes: CrashTotals,
}

// Hand-written so clean runs serialize exactly as before these fields
// existed: `recovery`/`adversary` appear only when something actually
// happened, keeping clean-run JSON byte-identical across versions.
impl Serialize for Fig9Result {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("rows".to_string(), self.rows.to_value());
        if self.recovery != RecoveryTotals::default() {
            m.insert("recovery".to_string(), self.recovery.to_value());
        }
        if self.adversary != AdversaryTotals::default() {
            m.insert("adversary".to_string(), self.adversary.to_value());
        }
        if self.crashes != CrashTotals::default() {
            m.insert("crashes".to_string(), self.crashes.to_value());
        }
        serde::Value::Object(m)
    }
}

/// Runs the policy comparison across buffer sizes (in parallel).
pub fn run(scale: &Scale) -> Fig9Result {
    let buffers: Vec<u32> = vec![64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024];
    let mut base_cfg = ScenarioConfig::base_case(64 * 1024);
    base_cfg.duration = scale.duration;
    base_cfg.warmup = scale.warmup;
    scale.stamp_faults(&mut base_cfg);
    scale.stamp_adversary(&mut base_cfg);
    let base = run_scenario(base_cfg);
    let base_us = mean_std(&base, "64KB").0;
    let base_p99 = p99_us(&base, "64KB");
    let mut recovery = base.recovery_totals();
    let mut adversary = base.adversary;
    let mut crashes = base.crashes;

    let rows_and_totals: Vec<(Fig9Row, RecoveryTotals, AdversaryTotals, CrashTotals)> = buffers
        .into_par_iter()
        .map(|buf| {
            let mk = |policy: PolicyKind| {
                let mut cfg = match policy {
                    PolicyKind::None => ScenarioConfig::interfered(buf),
                    p => ScenarioConfig::managed(buf, p),
                };
                cfg.duration = scale.duration;
                cfg.warmup = scale.warmup;
                scale.stamp_faults(&mut cfg);
                scale.stamp_adversary(&mut cfg);
                cfg
            };
            let (intf, (fm, ios)) = rayon::join(
                || run_scenario(mk(PolicyKind::None)),
                || {
                    rayon::join(
                        || run_scenario(mk(PolicyKind::FreeMarket)),
                        || run_scenario(mk(PolicyKind::IoShares)),
                    )
                },
            );
            let mut totals = intf.recovery_totals();
            totals.merge(fm.recovery_totals());
            totals.merge(ios.recovery_totals());
            let mut adv = intf.adversary;
            adv.merge(fm.adversary);
            adv.merge(ios.adversary);
            let mut crash = intf.crashes;
            crash.merge(fm.crashes);
            crash.merge(ios.crashes);
            let row = Fig9Row {
                buffer: fmt_size(buf),
                base_us,
                interfered_us: mean_std(&intf, "64KB").0,
                freemarket_us: mean_std(&fm, "64KB").0,
                ioshares_us: mean_std(&ios, "64KB").0,
                base_p99_us: base_p99,
                interfered_p99_us: p99_us(&intf, "64KB"),
                freemarket_p99_us: p99_us(&fm, "64KB"),
                ioshares_p99_us: p99_us(&ios, "64KB"),
                freemarket_slo_pct: slo_violation_pct(&fm, "64KB"),
                ioshares_slo_pct: slo_violation_pct(&ios, "64KB"),
            };
            (row, totals, adv, crash)
        })
        .collect();
    let mut rows = Vec::with_capacity(rows_and_totals.len());
    for (row, totals, adv, crash) in rows_and_totals {
        rows.push(row);
        recovery.merge(totals);
        adversary.merge(adv);
        crashes.merge(crash);
    }
    Fig9Result {
        rows,
        recovery,
        adversary,
        crashes,
    }
}

impl Fig9Result {
    /// Prints the figure.
    pub fn print(&self) {
        println!("Figure 9 — policies vs interfering buffer size (64KB reporter)");
        println!(
            "\n  {:>8} {:>10} {:>12} {:>12} {:>12}",
            "buffer", "base µs", "unmanaged", "FreeMarket", "IOShares"
        );
        for r in &self.rows {
            println!(
                "  {:>8} {:>10.1} {:>12.1} {:>12.1} {:>12.1}",
                r.buffer, r.base_us, r.interfered_us, r.freemarket_us, r.ioshares_us
            );
        }
        println!(
            "\n  {:>8} {:>10} {:>12} {:>12} {:>12}  (p99 µs / SLO-viol %)",
            "buffer", "base p99", "unmanaged", "FreeMarket", "IOShares"
        );
        for r in &self.rows {
            println!(
                "  {:>8} {:>10.1} {:>12.1} {:>6.1}/{:<5.1} {:>6.1}/{:<5.1}",
                r.buffer,
                r.base_p99_us,
                r.interfered_p99_us,
                r.freemarket_p99_us,
                r.freemarket_slo_pct,
                r.ioshares_p99_us,
                r.ioshares_slo_pct
            );
        }
        let ios_wins = self
            .rows
            .iter()
            .filter(|r| r.ioshares_us <= r.freemarket_us + 2.0)
            .count();
        println!(
            "\n  IOShares ≤ FreeMarket in {}/{} groups (paper: IOShares stays near base)",
            ios_wins,
            self.rows.len()
        );
        if self.recovery != RecoveryTotals::default() {
            let r = &self.recovery;
            println!(
                "  recovery: reconnects={} replayed={} retries={} lost={} watchdog_trips={}",
                r.reconnects, r.replayed, r.retries, r.lost_requests, r.watchdog_trips
            );
        }
        if self.adversary != AdversaryTotals::default() {
            let a = &self.adversary;
            println!(
                "  adversary: bursts={} deferred={} corrections={} spend attacker/honest={:.0}/{:.0}",
                a.bursts, a.deferred_sends, a.poison_corrections, a.attacker_spent, a.honest_spent
            );
        }
        if self.crashes != CrashTotals::default() {
            let c = &self.crashes;
            println!(
                "  crashes: mgr={} host={} vm={} readmitted={} dropped={} journal_divergence={}",
                c.mgr_crashes,
                c.host_crashes,
                c.vm_crashes,
                c.readmissions,
                c.requests_dropped,
                c.journal_divergence
            );
        }
    }
}
