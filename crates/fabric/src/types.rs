//! Identifiers and wire-level enums shared across the fabric model.

use resex_simcore::define_id;
use serde::{Deserialize, Serialize};

define_id!(
    /// One HCA port / fabric endpoint (the simulated analogue of an
    /// InfiniBand LID). The paper's testbed has two nodes.
    NodeId
);

define_id!(
    /// Queue-pair number, unique within one HCA.
    QpNum
);

define_id!(
    /// Completion-queue number, unique within one HCA.
    CqNum
);

define_id!(
    /// Protection domain, unique within one HCA.
    PdId
);

define_id!(
    /// A multicast group spanning the fabric (switch-replicated).
    McGroupId
);

/// Transport type of a queue pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum QpType {
    /// Reliable connected: acknowledged, ordered, supports RDMA (default).
    Rc,
    /// Unreliable datagram: connectionless sends of at most one MTU, no
    /// acknowledgements, silent drops when the receiver is not ready —
    /// the transport real exchanges use for multicast market data.
    Ud,
}

/// Verbs opcode carried by a work request and echoed in its completion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Opcode {
    /// Two-sided send; consumes a receive WQE at the destination.
    Send = 0,
    /// One-sided RDMA write; invisible to the destination CPU.
    RdmaWrite = 1,
    /// RDMA write with immediate; also consumes a receive WQE and generates
    /// a receive completion carrying the immediate value.
    RdmaWriteImm = 2,
    /// One-sided RDMA read; data flows from the responder back to the
    /// initiator, consuming the *responder's* egress bandwidth.
    RdmaRead = 3,
    /// Receive completion (never posted; only appears in CQEs).
    Recv = 4,
}

impl Opcode {
    /// Decodes from the CQE byte.
    pub fn from_u8(v: u8) -> Option<Opcode> {
        Some(match v {
            0 => Opcode::Send,
            1 => Opcode::RdmaWrite,
            2 => Opcode::RdmaWriteImm,
            3 => Opcode::RdmaRead,
            4 => Opcode::Recv,
            _ => return None,
        })
    }
}

/// Completion status, mirroring the interesting subset of `ibv_wc_status`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum WcStatus {
    /// Operation completed successfully.
    Success = 0,
    /// Local memory-key validation failed at post time.
    LocalProtectionError = 1,
    /// Remote key validation failed at the responder.
    RemoteAccessError = 2,
    /// The responder had no receive WQE posted (receiver-not-ready).
    RnrRetryExceeded = 3,
    /// The QP was not in a state that allows the operation.
    InvalidQpState = 4,
    /// The completion queue overflowed and this entry was dropped.
    CqOverrun = 5,
    /// Transport retransmission exhausted its retry budget (wire loss or
    /// persistent corruption); the QP transitions to `ERROR`.
    RetryExceeded = 6,
    /// The work request was flushed from a QP that entered `ERROR` before
    /// the request could execute.
    WrFlushError = 7,
}

impl WcStatus {
    /// Decodes from the CQE byte.
    pub fn from_u8(v: u8) -> Option<WcStatus> {
        Some(match v {
            0 => WcStatus::Success,
            1 => WcStatus::LocalProtectionError,
            2 => WcStatus::RemoteAccessError,
            3 => WcStatus::RnrRetryExceeded,
            4 => WcStatus::InvalidQpState,
            5 => WcStatus::CqOverrun,
            6 => WcStatus::RetryExceeded,
            7 => WcStatus::WrFlushError,
            _ => return None,
        })
    }

    /// True for [`WcStatus::Success`].
    pub fn is_ok(self) -> bool {
        self == WcStatus::Success
    }
}

/// Access rights requested when registering a memory region.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Local read (always required for sends).
    pub local_read: bool,
    /// Local write (required for receive and read-response placement).
    pub local_write: bool,
    /// Remote write (required for incoming RDMA writes).
    pub remote_write: bool,
    /// Remote read (required for incoming RDMA reads).
    pub remote_read: bool,
}

impl Access {
    /// Local-only access (send sources).
    pub const LOCAL: Access = Access {
        local_read: true,
        local_write: true,
        remote_write: false,
        remote_read: false,
    };

    /// Full local + remote access (typical for benchmark buffers).
    pub const FULL: Access = Access {
        local_read: true,
        local_write: true,
        remote_write: true,
        remote_read: true,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opcode_roundtrip() {
        for op in [
            Opcode::Send,
            Opcode::RdmaWrite,
            Opcode::RdmaWriteImm,
            Opcode::RdmaRead,
            Opcode::Recv,
        ] {
            assert_eq!(Opcode::from_u8(op as u8), Some(op));
        }
        assert_eq!(Opcode::from_u8(200), None);
    }

    #[test]
    fn status_roundtrip() {
        for st in [
            WcStatus::Success,
            WcStatus::LocalProtectionError,
            WcStatus::RemoteAccessError,
            WcStatus::RnrRetryExceeded,
            WcStatus::InvalidQpState,
            WcStatus::CqOverrun,
            WcStatus::RetryExceeded,
            WcStatus::WrFlushError,
        ] {
            assert_eq!(WcStatus::from_u8(st as u8), Some(st));
        }
        assert!(WcStatus::Success.is_ok());
        assert!(!WcStatus::CqOverrun.is_ok());
    }
}
