//! Domains (virtual machines).

use resex_simcore::define_id;
use resex_simmem::MemoryHandle;

define_id!(
    /// A domain (VM). Domain 0 is the privileged control domain.
    DomainId
);

/// The canonical id of the control domain.
pub const DOM0: DomainId = DomainId::new(0);

/// One virtual machine.
pub struct Domain {
    /// This domain's id.
    pub id: DomainId,
    /// Human-readable name (shows up in experiment output).
    pub name: String,
    /// The domain's guest-physical memory.
    pub mem: MemoryHandle,
    /// Whether the domain may use privileged interfaces (introspection,
    /// cap-setting). True for dom0.
    pub privileged: bool,
    /// Scheduling weight (Xen credit-scheduler default 256).
    pub weight: u32,
    /// CPU cap in percent; 0 means *uncapped*, matching Xen semantics.
    pub cap_pct: u32,
}

impl Domain {
    /// Effective cap as a fraction of one PCPU: `None` when uncapped.
    pub fn cap_fraction(&self) -> Option<f64> {
        if self.cap_pct == 0 {
            None
        } else {
            Some(self.cap_pct as f64 / 100.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dom(cap: u32) -> Domain {
        Domain {
            id: DomainId::new(1),
            name: "test".into(),
            mem: MemoryHandle::new(4096),
            privileged: false,
            weight: 256,
            cap_pct: cap,
        }
    }

    #[test]
    fn cap_zero_means_uncapped() {
        assert_eq!(dom(0).cap_fraction(), None);
        assert_eq!(dom(25).cap_fraction(), Some(0.25));
        assert_eq!(dom(100).cap_fraction(), Some(1.0));
    }

    #[test]
    fn dom0_is_domain_zero() {
        assert_eq!(DOM0.index(), 0);
    }
}
