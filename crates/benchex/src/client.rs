//! BenchEx clients.
//!
//! Two workload shapes from the paper's experiments:
//!
//! * **Closed loop** — send, wait for the response, immediately (or after a
//!   think time) send the next. Saturating; this is what both the reporting
//!   and the standard interfering VMs run.
//! * **Open loop** — send at a fixed rate regardless of responses. Used for
//!   the "10 requests per epoch" slow interferer in the no-interference
//!   experiment (Figure 8).
//!
//! Like the server, a client is a pure state machine returning
//! [`ClientAction`]s that the platform executes.

use crate::request::TransactionRequest;
use crate::trace::TraceGen;
use resex_simcore::rng::SimRng;
use resex_simcore::stats::Histogram;
use resex_simcore::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Workload shape.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ClientMode {
    /// Wait for each response; then wait `think` before the next request.
    ClosedLoop {
        /// Pause between response and next request.
        think: SimDuration,
    },
    /// Send every `interval` regardless of outstanding requests.
    OpenLoop {
        /// Inter-request interval.
        interval: SimDuration,
    },
}

/// What the platform must do for the client.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientAction {
    /// Post this request to the server now.
    Send(TransactionRequest),
    /// Call [`Client::on_timer`] at the given time.
    ArmTimer(SimTime),
    /// Nothing.
    Idle,
}

/// How long the platform waits for a response before handing the request
/// back to [`Client::on_request_timeout`]. Far above any healthy RTT
/// (hundreds of microseconds) but short enough to re-issue several times
/// within one link flap.
pub const REQUEST_TIMEOUT: SimDuration = SimDuration::from_millis(10);

/// Re-issue budget per request before it is declared permanently lost.
/// With [`REQUEST_TIMEOUT`] this gives a request 160 ms of end-to-end
/// patience — enough to ride out any outage the recovery layer is
/// specified to survive.
pub const REQUEST_RETRY_LIMIT: u32 = 16;

/// Tunable client recovery knobs, hoisted from the old hardcoded
/// constants so chaos schedules (and scenario files) can tighten or relax
/// a client's patience. Defaults are exactly the historical constants, so
/// an absent or default tuning block changes nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct ClientTuning {
    /// How long the platform waits for a response before the request goes
    /// back to [`Client::on_request_timeout`].
    pub request_timeout: SimDuration,
    /// Re-issue budget per request before it is declared permanently lost.
    pub request_retry_limit: u32,
}

impl Default for ClientTuning {
    fn default() -> Self {
        ClientTuning {
            request_timeout: REQUEST_TIMEOUT,
            request_retry_limit: REQUEST_RETRY_LIMIT,
        }
    }
}

// Hand-written so omitted fields fall back to the historical constants
// rather than zero (the vendored serde derive only supports bare
// `#[serde(default)]`).
impl Deserialize for ClientTuning {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("ClientTuning: expected object"))?;
        let mut tuning = ClientTuning::default();
        if let Some(x) = m.get("request_timeout") {
            tuning.request_timeout = SimDuration::from_value(x)?;
        }
        if let Some(x) = m.get("request_retry_limit") {
            tuning.request_retry_limit = u32::from_value(x)?;
        }
        Ok(tuning)
    }
}

/// Outcome of a request timeout, decided by [`Client::on_request_timeout`].
#[derive(Clone, Debug, PartialEq)]
pub enum RetryDecision {
    /// Re-issue this request. Same id and task — the server's transactions
    /// are idempotent, and a late response to an earlier attempt is simply
    /// accepted (the platform drops duplicates).
    Retry(TransactionRequest),
    /// Retry budget exhausted: the request is permanently lost; execute
    /// the follow-up action so the workload loop keeps running.
    GiveUp(ClientAction),
}

/// Relative half-width of the think-time jitter window. Real clients
/// never reissue with cycle-exact timing; a ±5 % wobble decorrelates the
/// request phase from collocated VMs' burst cycles without measurably
/// widening the solo-latency distribution.
const THINK_JITTER: f64 = 0.05;

/// One benchmark client.
pub struct Client {
    /// This client's id (echoed by the server).
    pub id: u32,
    mode: ClientMode,
    trace: TraceGen,
    rng: SimRng,
    next_id: u64,
    sent: u64,
    received: u64,
    outstanding: u64,
    retries: u64,
    lost: u64,
    retry_limit: u32,
    /// Round-trip latencies in nanoseconds.
    pub rtt: Histogram,
}

impl Client {
    /// Creates a client; call [`Client::start`] to kick it off. `seed`
    /// drives the client's think-time jitter stream.
    pub fn new(id: u32, mode: ClientMode, trace: TraceGen, seed: u64) -> Self {
        Client {
            id,
            mode,
            trace,
            rng: SimRng::seed_from_u64(seed),
            next_id: 0,
            sent: 0,
            received: 0,
            outstanding: 0,
            retries: 0,
            lost: 0,
            retry_limit: REQUEST_RETRY_LIMIT,
            rtt: Histogram::with_default_resolution(),
        }
    }

    /// Overrides the per-request re-issue budget (defaults to
    /// [`REQUEST_RETRY_LIMIT`]).
    pub fn set_retry_limit(&mut self, limit: u32) {
        self.retry_limit = limit;
    }

    /// Requests sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Responses received so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Requests in flight.
    pub fn outstanding(&self) -> u64 {
        self.outstanding
    }

    /// Requests re-issued after a timeout.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Requests permanently lost (retry budget exhausted). The recovery
    /// layer's target is zero.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    fn make_request(&mut self, now: SimTime) -> TransactionRequest {
        let id = self.next_id;
        self.next_id += 1;
        self.sent += 1;
        self.outstanding += 1;
        TransactionRequest {
            id,
            client_id: self.id,
            sent_at: now,
            task: self.trace.next_task(),
        }
    }

    /// Begins the workload at `now`.
    pub fn start(&mut self, now: SimTime) -> ClientAction {
        match self.mode {
            ClientMode::ClosedLoop { .. } => ClientAction::Send(self.make_request(now)),
            ClientMode::OpenLoop { .. } => {
                // First send fires immediately via the timer path so all
                // sends share one code path.
                ClientAction::ArmTimer(now)
            }
        }
    }

    /// A response for `request_id` arrived (matched by the platform).
    pub fn on_response(&mut self, sent_at: SimTime, now: SimTime) -> ClientAction {
        self.received += 1;
        self.outstanding = self.outstanding.saturating_sub(1);
        self.rtt.record(now.duration_since(sent_at).as_nanos());
        match self.mode {
            ClientMode::ClosedLoop { think } => {
                if think.is_zero() {
                    ClientAction::Send(self.make_request(now))
                } else {
                    // Jitter the think time by ±THINK_JITTER.
                    let f = 1.0 + THINK_JITTER * (2.0 * self.rng.next_f64() - 1.0);
                    ClientAction::ArmTimer(now + think.mul_f64(f))
                }
            }
            ClientMode::OpenLoop { .. } => ClientAction::Idle,
        }
    }

    /// No response for `req` within [`REQUEST_TIMEOUT`] (this was attempt
    /// number `attempts`): decide between an idempotent re-issue and
    /// giving the request up for lost. The re-issued request keeps its
    /// original `sent_at`, so the recorded round-trip honestly includes
    /// the outage the retry rode out. Draws no RNG — retries cannot
    /// perturb the think-time jitter stream.
    pub fn on_request_timeout(
        &mut self,
        req: TransactionRequest,
        attempts: u32,
        now: SimTime,
    ) -> RetryDecision {
        if attempts < self.retry_limit {
            self.retries += 1;
            RetryDecision::Retry(req)
        } else {
            self.lost += 1;
            self.outstanding = self.outstanding.saturating_sub(1);
            // Keep a closed loop closed: abandoning the request must not
            // also abandon the workload.
            let follow = match self.mode {
                ClientMode::ClosedLoop { .. } => ClientAction::Send(self.make_request(now)),
                ClientMode::OpenLoop { .. } => ClientAction::Idle,
            };
            RetryDecision::GiveUp(follow)
        }
    }

    /// A previously armed timer fired.
    pub fn on_timer(&mut self, now: SimTime) -> Vec<ClientAction> {
        let mut out = Vec::new();
        self.on_timer_into(now, &mut out);
        out
    }

    /// Allocation-free variant of [`Self::on_timer`]: pushes actions into a
    /// caller-owned scratch buffer instead of returning a fresh `Vec`.
    pub fn on_timer_into(&mut self, now: SimTime, out: &mut Vec<ClientAction>) {
        match self.mode {
            ClientMode::ClosedLoop { .. } => {
                // Think-time expiry: send the next request.
                out.push(ClientAction::Send(self.make_request(now)));
            }
            ClientMode::OpenLoop { interval } => {
                out.push(ClientAction::Send(self.make_request(now)));
                out.push(ClientAction::ArmTimer(now + interval));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceProfile;

    fn us(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    fn trace() -> TraceGen {
        TraceGen::new(TraceProfile::default(), 42)
    }

    #[test]
    fn closed_loop_sends_immediately_on_response() {
        let mut c = Client::new(
            1,
            ClientMode::ClosedLoop {
                think: SimDuration::ZERO,
            },
            trace(),
            7,
        );
        let a = c.start(us(0));
        let first = match a {
            ClientAction::Send(r) => r,
            other => panic!("expected send, got {other:?}"),
        };
        assert_eq!(first.id, 0);
        assert_eq!(c.outstanding(), 1);
        let a = c.on_response(first.sent_at, us(209));
        match a {
            ClientAction::Send(r) => assert_eq!(r.id, 1),
            other => panic!("expected send, got {other:?}"),
        }
        assert_eq!(c.received(), 1);
        assert_eq!(c.rtt.mean(), 209_000.0, "RTT recorded in ns");
    }

    #[test]
    fn closed_loop_with_think_time_arms_timer() {
        let think = SimDuration::from_micros(50);
        let mut c = Client::new(1, ClientMode::ClosedLoop { think }, trace(), 7);
        let first = match c.start(us(0)) {
            ClientAction::Send(r) => r,
            _ => panic!(),
        };
        match c.on_response(first.sent_at, us(200)) {
            // Think time is jittered ±5%: 200 + 50·[0.95, 1.05].
            ClientAction::ArmTimer(t) => {
                assert!(t >= us(247) && t <= us(253), "jittered think: {t}");
            }
            other => panic!("expected timer, got {other:?}"),
        }
        let acts = c.on_timer(us(250));
        assert!(matches!(acts[0], ClientAction::Send(_)));
    }

    #[test]
    fn open_loop_sends_on_schedule() {
        let interval = SimDuration::from_millis(100); // 10 req/s
        let mut c = Client::new(2, ClientMode::OpenLoop { interval }, trace(), 7);
        match c.start(us(0)) {
            ClientAction::ArmTimer(t) => assert_eq!(t, us(0)),
            other => panic!("expected timer, got {other:?}"),
        }
        let acts = c.on_timer(us(0));
        assert_eq!(acts.len(), 2);
        assert!(matches!(acts[0], ClientAction::Send(_)));
        match &acts[1] {
            ClientAction::ArmTimer(t) => assert_eq!(*t, SimTime::from_millis(100)),
            other => panic!("expected re-arm, got {other:?}"),
        }
        // Responses do not trigger sends in open loop.
        assert_eq!(c.on_response(us(0), us(500)), ClientAction::Idle);
    }

    #[test]
    fn open_loop_tolerates_multiple_outstanding() {
        let mut c = Client::new(
            3,
            ClientMode::OpenLoop {
                interval: SimDuration::from_micros(10),
            },
            trace(),
            7,
        );
        c.start(us(0));
        c.on_timer(us(0));
        c.on_timer(us(10));
        c.on_timer(us(20));
        assert_eq!(c.outstanding(), 3);
        assert_eq!(c.sent(), 3);
    }

    #[test]
    fn tuning_defaults_pin_the_historical_constants() {
        let t = ClientTuning::default();
        assert_eq!(t.request_timeout, SimDuration::from_millis(10));
        assert_eq!(t.request_retry_limit, 16);
        assert_eq!(t.request_timeout, REQUEST_TIMEOUT);
        assert_eq!(t.request_retry_limit, REQUEST_RETRY_LIMIT);
        // An empty object deserializes to the same defaults.
        let parsed: ClientTuning = serde_json::from_str("{}").unwrap();
        assert_eq!(parsed, t);
        let parsed: ClientTuning = serde_json::from_str(r#"{"request_retry_limit": 3}"#).unwrap();
        assert_eq!(parsed.request_retry_limit, 3);
        assert_eq!(parsed.request_timeout, REQUEST_TIMEOUT);
    }

    #[test]
    fn retry_limit_override_changes_the_give_up_point() {
        let mut c = Client::new(
            1,
            ClientMode::ClosedLoop {
                think: SimDuration::ZERO,
            },
            trace(),
            7,
        );
        c.set_retry_limit(2);
        let req = match c.start(us(0)) {
            ClientAction::Send(r) => r,
            _ => panic!(),
        };
        assert!(matches!(
            c.on_request_timeout(req, 1, us(100)),
            RetryDecision::Retry(_)
        ));
        assert!(matches!(
            c.on_request_timeout(req, 2, us(200)),
            RetryDecision::GiveUp(_)
        ));
        assert_eq!(c.lost(), 1);
    }

    #[test]
    fn request_ids_are_sequential_and_stamped() {
        let mut c = Client::new(
            1,
            ClientMode::ClosedLoop {
                think: SimDuration::ZERO,
            },
            trace(),
            7,
        );
        let r0 = match c.start(us(5)) {
            ClientAction::Send(r) => r,
            _ => panic!(),
        };
        assert_eq!(r0.sent_at, us(5));
        assert_eq!(r0.client_id, 1);
        let r1 = match c.on_response(r0.sent_at, us(100)) {
            ClientAction::Send(r) => r,
            _ => panic!(),
        };
        assert_eq!((r0.id, r1.id), (0, 1));
    }
}
