//! Out-of-band completion-queue scanning.
//!
//! IBMon's core trick (paper §III, ref. 19): dom0 maps the guest pages holding
//! a CQ ring and periodically re-reads them. The HCA keeps DMA-writing CQEs
//! into the same pages, so diffing successive scans reveals how many
//! completions happened, for which QP, and with what byte counts — without
//! any cooperation from the bypassed guest.
//!
//! Two estimators are combined:
//!
//! * **Slot diffing** — a slot whose `(wr_id, wqe_counter, owner)` signature
//!   changed since the last scan was overwritten by the HCA.
//! * **`wqe_counter` deltas** — the HCA stamps CQEs with a wrapping 16-bit
//!   completion counter; the wrapping distance between the freshest counters
//!   of consecutive scans counts completions even when the ring wrapped
//!   multiple times between polls (slot diffing alone would alias).

use resex_fabric::{Cqe, CQE_SIZE};
use resex_simcore::time::SimTime;
use resex_simmem::{ForeignMapping, MemError};
use serde::{Deserialize, Serialize};

/// What one scan of one CQ ring observed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ScanSample {
    /// Completions inferred since the previous scan.
    pub completions: u64,
    /// Estimated payload bytes those completions carried.
    pub bytes: u64,
    /// Estimated MTUs those completions consumed.
    pub mtus: u64,
    /// Ring slots whose contents changed (≤ ring capacity).
    pub slots_changed: u32,
    /// True when the counter delta exceeded the changed-slot count: the
    /// ring wrapped more than once between polls and per-slot data is
    /// undersampled.
    pub aliased: bool,
    /// Slots whose bytes failed to decode as a CQE without being in the
    /// uninitialized pattern — a torn read racing the HCA's DMA write. The
    /// slot is skipped (its cached signature is kept) so the next scan
    /// observes the settled value.
    #[serde(default)]
    pub torn: u32,
}

/// Signature of a ring slot, for change detection.
type SlotSig = (u64, u16, u8);

/// Monitors one completion queue through a foreign mapping.
pub struct CqMonitor {
    mapping: ForeignMapping,
    capacity: u32,
    mtu: u32,
    sigs: Vec<Option<SlotSig>>,
    latest_counter: Option<u16>,
    primed: bool,
    lifetime_completions: u64,
    lifetime_bytes: u64,
}

/// Wrapping forward distance between two u16 counters, treating distances
/// ≥ 2^15 as "behind" (returns 0).
fn wrapping_ahead(from: u16, to: u16) -> u16 {
    let d = to.wrapping_sub(from);
    if d < 0x8000 {
        d
    } else {
        0
    }
}

impl CqMonitor {
    /// Creates a monitor over a mapped ring of `capacity` CQEs.
    ///
    /// The mapping must cover `capacity * 32` bytes.
    pub fn new(mapping: ForeignMapping, capacity: u32, mtu: u32) -> Result<Self, MemError> {
        assert!(mtu > 0, "mtu must be positive");
        // Validate the window size eagerly.
        let needed = capacity as usize * CQE_SIZE;
        if mapping.len() < needed {
            return Err(MemError::OutOfBounds {
                gpa: mapping.base(),
                len: needed,
                size: mapping.len() as u64,
            });
        }
        Ok(CqMonitor {
            mapping,
            capacity,
            mtu,
            sigs: vec![None; capacity as usize],
            latest_counter: None,
            primed: false,
            lifetime_completions: 0,
            lifetime_bytes: 0,
        })
    }

    /// Completions observed over the monitor's lifetime.
    pub fn lifetime_completions(&self) -> u64 {
        self.lifetime_completions
    }

    /// Bytes observed over the monitor's lifetime.
    pub fn lifetime_bytes(&self) -> u64 {
        self.lifetime_bytes
    }

    /// Ring capacity in CQE slots.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Scans the ring and reports activity since the previous scan.
    ///
    /// The first scan primes the signature cache and reports zero (the
    /// monitor cannot know how old pre-existing entries are).
    pub fn scan(&mut self, now: SimTime) -> Result<ScanSample, MemError> {
        self.scan_faulted(now, None)
    }

    /// [`CqMonitor::scan`] with an injected torn read: the bytes of
    /// `tear_slot` in the *snapshot copy* are garbled before decoding, as
    /// if dom0's read raced the HCA's DMA write. Guest memory is untouched.
    pub fn scan_faulted(
        &mut self,
        _now: SimTime,
        tear_slot: Option<u32>,
    ) -> Result<ScanSample, MemError> {
        let mut snapshot = self.mapping.snapshot()?;
        if let Some(slot) = tear_slot {
            if slot < self.capacity {
                // A status byte no WcStatus maps to: decoding must fail.
                snapshot[slot as usize * CQE_SIZE + 19] = 0xEE;
            }
        }
        let mut changed = 0u32;
        let mut changed_bytes = 0u64;
        let mut changed_mtus = 0u64;
        let mut torn = 0u32;
        let mut freshest: Option<u16> = self.latest_counter;
        for slot in 0..self.capacity as usize {
            let raw: &[u8; CQE_SIZE] = snapshot[slot * CQE_SIZE..(slot + 1) * CQE_SIZE]
                .try_into()
                .expect("slot slice is CQE_SIZE");
            let decoded = match Cqe::try_decode(raw) {
                Ok(pair) => Some(pair),
                // The uninitialized fill pattern is not torn — just empty.
                Err(_) if raw.iter().all(|&b| b == 0xFF) => None,
                Err(_) => {
                    torn += 1;
                    continue;
                }
            };
            let sig = decoded.map(|(c, owner)| (c.wr_id, c.wqe_counter, owner));
            if sig != self.sigs[slot] {
                self.sigs[slot] = sig;
                if let Some((cqe, _)) = decoded {
                    changed += 1;
                    changed_bytes += cqe.byte_len as u64;
                    changed_mtus += cqe.byte_len.div_ceil(self.mtu).max(1) as u64;
                    freshest = Some(match freshest {
                        None => cqe.wqe_counter,
                        Some(f) => {
                            if wrapping_ahead(f, cqe.wqe_counter) > 0 {
                                cqe.wqe_counter
                            } else {
                                f
                            }
                        }
                    });
                }
            }
        }
        if !self.primed {
            self.primed = true;
            self.latest_counter = freshest;
            return Ok(ScanSample {
                torn,
                ..ScanSample::default()
            });
        }
        let counter_delta = match (self.latest_counter, freshest) {
            (Some(old), Some(new)) => wrapping_ahead(old, new) as u64,
            (None, Some(_)) => changed as u64,
            _ => 0,
        };
        self.latest_counter = freshest;
        // The counter is authoritative for *how many*; slot contents tell
        // us *how big*. When aliased, scale the per-slot averages up.
        let completions = counter_delta.max(changed as u64);
        // A torn slot hides activity just like a multi-wrap alias does, so
        // it marks the sample the same way.
        let aliased = counter_delta > changed as u64 || torn > 0;
        let (bytes, mtus) = if changed == 0 {
            (0, 0)
        } else if aliased {
            let scale = completions as f64 / changed as f64;
            (
                (changed_bytes as f64 * scale).round() as u64,
                (changed_mtus as f64 * scale).round() as u64,
            )
        } else {
            (changed_bytes, changed_mtus)
        };
        self.lifetime_completions += completions;
        self.lifetime_bytes += bytes;
        Ok(ScanSample {
            completions,
            bytes,
            mtus,
            slots_changed: changed,
            aliased,
            torn,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resex_fabric::{CompletionQueue, CqNum, Opcode, QpNum, WcStatus};
    use resex_simmem::MemoryHandle;

    fn setup(capacity: u32) -> (MemoryHandle, CompletionQueue, CqMonitor) {
        let mem = MemoryHandle::new(1024 * 1024);
        let gpa = mem
            .alloc_bytes((capacity as usize * CQE_SIZE) as u64)
            .unwrap();
        let cq = CompletionQueue::new(CqNum::new(0), mem.clone(), gpa, capacity).unwrap();
        let mapping = ForeignMapping::map(&mem, gpa, capacity as usize * CQE_SIZE).unwrap();
        let mon = CqMonitor::new(mapping, capacity, 1024).unwrap();
        (mem, cq, mon)
    }

    fn push(cq: &mut CompletionQueue, wr_id: u64, counter: u16, byte_len: u32) {
        cq.push(Cqe {
            wr_id,
            qp_num: QpNum::new(1),
            byte_len,
            wqe_counter: counter,
            opcode: Opcode::Send,
            status: WcStatus::Success,
            imm_data: 0,
        })
        .unwrap();
    }

    fn t(n: u64) -> SimTime {
        SimTime::from_micros(n)
    }

    #[test]
    fn first_scan_is_a_zero_baseline() {
        let (_m, mut cq, mut mon) = setup(16);
        push(&mut cq, 1, 0, 4096);
        let s = mon.scan(t(0)).unwrap();
        assert_eq!(s.completions, 0, "priming scan");
        // But subsequent activity is counted.
        push(&mut cq, 2, 1, 4096);
        let s = mon.scan(t(1)).unwrap();
        assert_eq!(s.completions, 1);
        assert_eq!(s.bytes, 4096);
        assert_eq!(s.mtus, 4);
    }

    #[test]
    fn counts_multiple_completions_between_scans() {
        let (_m, mut cq, mut mon) = setup(32);
        mon.scan(t(0)).unwrap();
        for i in 0..5 {
            push(&mut cq, i, i as u16, 65536);
            cq.poll().unwrap();
        }
        let s = mon.scan(t(1)).unwrap();
        assert_eq!(s.completions, 5);
        assert_eq!(s.bytes, 5 * 65536);
        assert_eq!(s.mtus, 5 * 64);
        assert!(!s.aliased);
    }

    #[test]
    fn quiet_ring_reports_zero() {
        let (_m, mut cq, mut mon) = setup(8);
        push(&mut cq, 1, 0, 1024);
        mon.scan(t(0)).unwrap();
        let s = mon.scan(t(1)).unwrap();
        assert_eq!(s, ScanSample::default());
    }

    #[test]
    fn ring_wrap_within_capacity_is_exact() {
        let (_m, mut cq, mut mon) = setup(4);
        mon.scan(t(0)).unwrap();
        let mut counter = 0u16;
        for round in 0..3 {
            for _ in 0..4 {
                push(&mut cq, counter as u64, counter, 2048);
                cq.poll().unwrap();
                counter += 1;
            }
            let s = mon.scan(t(round + 1)).unwrap();
            assert_eq!(s.completions, 4, "round {round}");
            assert_eq!(s.mtus, 8);
        }
        assert_eq!(mon.lifetime_completions(), 12);
    }

    #[test]
    fn aliasing_detected_and_scaled() {
        // 20 completions through a 4-slot ring between scans: slot diffing
        // sees at most 4 changes; the wqe_counter reveals all 20. A counter
        // baseline must exist (one observed completion) for the delta to be
        // usable — just like the real tool.
        let (_m, mut cq, mut mon) = setup(4);
        push(&mut cq, 99, 0, 1024);
        cq.poll().unwrap();
        mon.scan(t(0)).unwrap();
        for i in 1..=20u16 {
            push(&mut cq, i as u64, i, 1024);
            cq.poll().unwrap();
        }
        let s = mon.scan(t(1)).unwrap();
        assert_eq!(s.completions, 20);
        assert!(s.aliased);
        assert!(s.slots_changed <= 4);
        assert_eq!(s.bytes, 20 * 1024, "scaled from per-slot average");
    }

    #[test]
    fn counter_wraparound_at_u16_boundary() {
        let (_m, mut cq, mut mon) = setup(8);
        push(&mut cq, 1, u16::MAX - 1, 1024);
        cq.poll().unwrap();
        mon.scan(t(0)).unwrap();
        // Counter wraps: 65534 → 2 is a forward distance of 4.
        for (i, c) in [u16::MAX, 0, 1, 2].iter().enumerate() {
            push(&mut cq, 10 + i as u64, *c, 1024);
            cq.poll().unwrap();
        }
        let s = mon.scan(t(1)).unwrap();
        assert_eq!(s.completions, 4);
    }

    #[test]
    fn torn_read_is_skipped_and_recovered_next_scan() {
        let (_m, mut cq, mut mon) = setup(8);
        push(&mut cq, 1, 0, 1024);
        mon.scan(t(0)).unwrap();
        // New CQE lands in slot 1; the scan's copy of that slot is garbled.
        push(&mut cq, 2, 1, 2048);
        let s = mon.scan_faulted(t(1), Some(1)).unwrap();
        assert_eq!(s.torn, 1);
        assert_eq!(s.completions, 0, "the torn slot is not counted");
        assert!(s.aliased, "a torn scan is flagged as undersampled");
        // The cached signature was not poisoned: the next clean scan sees
        // the settled value and recovers the completion.
        let s = mon.scan(t(2)).unwrap();
        assert_eq!(s.torn, 0);
        assert_eq!(s.completions, 1);
        assert_eq!(s.bytes, 2048);
    }

    #[test]
    fn tearing_an_empty_slot_still_counts_as_torn() {
        let (_m, _cq, mut mon) = setup(8);
        mon.scan(t(0)).unwrap();
        // Slot 7 is uninitialized (all 0xFF); garbling one byte makes it
        // non-empty garbage, which reads as torn, not as a completion.
        let s = mon.scan_faulted(t(1), Some(7)).unwrap();
        assert_eq!(s.torn, 1);
        assert_eq!(s.completions, 0);
    }

    #[test]
    fn mapping_too_small_is_rejected() {
        let mem = MemoryHandle::new(64 * 1024);
        let gpa = mem.alloc_bytes(4 * CQE_SIZE as u64).unwrap();
        let mapping = ForeignMapping::map(&mem, gpa, 2 * CQE_SIZE).unwrap();
        assert!(CqMonitor::new(mapping, 4, 1024).is_err());
    }

    #[test]
    fn wrapping_ahead_math() {
        assert_eq!(wrapping_ahead(5, 10), 5);
        assert_eq!(wrapping_ahead(10, 5), 0, "behind reads as zero");
        assert_eq!(wrapping_ahead(65534, 2), 4);
        assert_eq!(wrapping_ahead(7, 7), 0);
    }
}
