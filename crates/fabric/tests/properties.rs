//! Property-based tests for fabric invariants: conservation, fairness,
//! and wire-format round-trips.

use proptest::prelude::*;
use resex_fabric::link::{EgressJob, GrantDecision, JobKind, LinkArbiter};
use resex_fabric::{Cqe, FabricConfig, NodeId, Opcode, QpNum, WcStatus, CQE_SIZE};
use resex_simcore::time::SimTime;
use resex_simmem::Gpa;
use std::collections::HashMap;

fn job(seq: u64, qp: u32, len: u32) -> EgressJob {
    EgressJob {
        seq,
        src_node: NodeId::new(0),
        qp: QpNum::new(qp),
        wr_id: seq,
        opcode: Opcode::Send,
        kind: JobKind::Send,
        dst_node: NodeId::new(1),
        dst_qp: QpNum::new(0),
        len,
        sent: 0,
        signaled: true,
        remote_gpa: Gpa::new(0),
        rkey: 0,
        imm: 0,
        payload: None,
        attempt: 0,
        rnr_attempt: 0,
    }
}

proptest! {
    /// Bytes granted equal bytes enqueued, for any mix of flows and sizes.
    #[test]
    fn arbiter_conserves_bytes(
        jobs in prop::collection::vec((0u32..8, 0u32..512 * 1024), 1..40),
        grant_mtus in 1u32..64,
    ) {
        let mut a = LinkArbiter::new();
        let total: u64 = jobs.iter().map(|&(_, len)| len as u64).sum();
        for (i, &(qp, len)) in jobs.iter().enumerate() {
            a.enqueue(job(i as u64, qp, len));
        }
        prop_assert_eq!(a.pending_bytes(), total);
        let mut granted = 0u64;
        let mut grants = 0usize;
        while let GrantDecision::Grant(g) = a.next_grant(grant_mtus * 1024, 1024, SimTime::ZERO) {
            granted += g.bytes as u64;
            grants += 1;
            prop_assert!(grants < 10_000_000, "arbiter must terminate");
        }
        prop_assert_eq!(granted, total);
        prop_assert!(!a.has_work());
    }

    /// MTU accounting: the MTUs charged for a message equal
    /// ceil(len / mtu) (minimum 1), regardless of grant size.
    #[test]
    fn arbiter_mtu_accounting(len in 0u32..4 * 1024 * 1024, grant_mtus in 1u32..128) {
        let mut a = LinkArbiter::new();
        a.enqueue(job(0, 0, len));
        let mut mtus = 0u64;
        while let GrantDecision::Grant(g) = a.next_grant(grant_mtus * 1024, 1024, SimTime::ZERO) {
            mtus += g.mtus as u64;
        }
        let expect = if len == 0 { 1 } else { len.div_ceil(1024) } as u64;
        prop_assert_eq!(mtus, expect);
    }

    /// Round-robin fairness: while K flows are continuously backlogged, any
    /// window of K consecutive grants touches K distinct flows.
    #[test]
    fn arbiter_rr_fairness(nflows in 2u32..6, grants_each in 4u32..12) {
        let mut a = LinkArbiter::new();
        // Every flow gets one long job needing exactly `grants_each` grants.
        for f in 0..nflows {
            a.enqueue(job(f as u64, f, grants_each * 16 * 1024));
        }
        let mut order = Vec::new();
        while let GrantDecision::Grant(g) = a.next_grant(16 * 1024, 1024, SimTime::ZERO) {
            order.push(g.job.qp.raw());
        }
        prop_assert_eq!(order.len() as u32, nflows * grants_each);
        // While all flows are backlogged, every window of `nflows`
        // consecutive grants is a permutation of all flows.
        for w in order[..(nflows * (grants_each - 1)) as usize].chunks(nflows as usize) {
            let distinct: std::collections::HashSet<_> = w.iter().collect();
            prop_assert_eq!(distinct.len(), w.len(), "window {:?} starves a flow", w);
        }
        // Per-flow totals are equal.
        let mut counts: HashMap<u32, u32> = HashMap::new();
        for f in order {
            *counts.entry(f).or_default() += 1;
        }
        prop_assert!(counts.values().all(|&c| c == grants_each));
    }

    /// FIFO within each flow: a flow's jobs complete in posting order.
    #[test]
    fn arbiter_fifo_per_flow(lens in prop::collection::vec(1u32..64 * 1024, 2..20)) {
        let mut a = LinkArbiter::new();
        for (i, &len) in lens.iter().enumerate() {
            a.enqueue(job(i as u64, 0, len));
        }
        let mut finished = Vec::new();
        while let GrantDecision::Grant(g) = a.next_grant(16 * 1024, 1024, SimTime::ZERO) {
            if g.job_finished {
                finished.push(g.job.seq);
            }
        }
        let expect: Vec<u64> = (0..lens.len() as u64).collect();
        prop_assert_eq!(finished, expect);
    }

    /// CQE wire format round-trips for arbitrary field values.
    #[test]
    fn cqe_roundtrip(
        wr_id in any::<u64>(),
        qp in any::<u32>(),
        byte_len in any::<u32>(),
        counter in any::<u16>(),
        imm in any::<u32>(),
        owner in 0u8..2,
    ) {
        let cqe = Cqe {
            wr_id,
            qp_num: QpNum::new(qp),
            byte_len,
            wqe_counter: counter,
            opcode: Opcode::RdmaWriteImm,
            status: WcStatus::Success,
            imm_data: imm,
        };
        let raw: [u8; CQE_SIZE] = cqe.encode(owner);
        let (back, o) = Cqe::decode(&raw).unwrap();
        prop_assert_eq!(back, cqe);
        prop_assert_eq!(o, owner);
    }

    /// Serialization time is monotone in bytes and exact for MTU multiples.
    #[test]
    fn serialization_monotone(a in 0u64..1 << 32, b in 0u64..1 << 32) {
        let cfg = FabricConfig::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(cfg.serialization_time(lo) <= cfg.serialization_time(hi));
    }
}
