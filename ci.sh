#!/usr/bin/env bash
# Local CI: format, lint, build, and the tier-1 test suite — fully offline.
#
# Usage: ./ci.sh [--quick]
#   --quick  fast tier: fmt/clippy/build/test plus the byte-identity gates
#            (thread-count, profiler zero-perturbation, sharded-calendar,
#            committed-baseline). Minutes, suitable for every push.
#   (bare)   full tier: the quick tier plus fault/adversary/crash soaks,
#            the chaos explorer, the sweep + rack scaling measurements and
#            their BENCH_*.json artifacts, and the perf-regression gate.
#
# The BENCH_*.json artifacts are staged in a temp dir and only moved into
# the repo root after every gate has passed, so a failing run can never
# leave a half-regenerated (and silently stale) artifact pair behind.
set -euo pipefail
cd "$(dirname "$0")"

TIER=full
case "${1:-}" in
    --quick) TIER=quick ;;
    "") ;;
    *) echo "usage: ./ci.sh [--quick]" >&2; exit 2 ;;
esac

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

# --workspace everywhere: the repo root is itself a package (resex-repro),
# so a bare `cargo build` would build only it — leaving the resex-bench
# `repro` binary the gates below depend on stale (or missing on a fresh
# clone), and skipping the member crates' test suites.
echo "==> cargo build --release --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --workspace (superset of tier-1)"
cargo test -q --offline --workspace

REPRO=./target/release/repro
# Pool width for the parallel legs: the host's cores, but at least 4 so
# cross-thread stealing is exercised even on small CI hosts.
PAR_THREADS="${RESEX_PAR_THREADS:-$(nproc)}"
if [ "$PAR_THREADS" -lt 4 ]; then PAR_THREADS=4; fi
CORES=$(nproc)
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

echo "==> determinism gate: fig9 --quick JSON, RESEX_THREADS=1 vs $PAR_THREADS"
RESEX_THREADS=1 "$REPRO" fig9 --quick --json "$TMP/fig9_seq.json" >/dev/null 2>&1
RESEX_THREADS="$PAR_THREADS" "$REPRO" fig9 --quick --json "$TMP/fig9_par.json" >/dev/null 2>&1
cmp "$TMP/fig9_seq.json" "$TMP/fig9_par.json"
echo "    byte-identical"

echo "==> sharded-determinism gate: RESEX_SHARDED=1 fig9 --quick vs monolithic calendar"
# The sharded runner's hard contract: advancing the calendar in
# conservative-lookahead windows (horizon = link one-way latency) must be
# state-neutral — not a byte of figure data may move.
RESEX_SHARDED=1 RESEX_THREADS=1 "$REPRO" fig9 --quick --json "$TMP/fig9_shard.json" >/dev/null 2>&1
cmp "$TMP/fig9_seq.json" "$TMP/fig9_shard.json"
echo "    byte-identical"

echo "==> zero-perturbation gate: profiled fig9 JSON byte-identical to unprofiled"
# The DES self-profiler must be a pure observer: running fig9 under
# `repro profile` may not change a byte of the figure data.
RESEX_THREADS=1 "$REPRO" profile fig9 --quick --json "$TMP/fig9_prof.json" \
    --profile-json "$TMP/fig9_report.json" >/dev/null 2>&1
cmp "$TMP/fig9_seq.json" "$TMP/fig9_prof.json"
grep -q '"schema": "resex-profile-v1"' "$TMP/fig9_report.json" || {
    echo "    FAIL: profile report missing schema"; exit 1; }
grep -q '"name": "FabricSync"' "$TMP/fig9_report.json" || {
    echo "    FAIL: profile report event-type table is empty"; exit 1; }
echo "    byte-identical; profile report parsed with a populated event-type table"

echo "==> adversary-off/crash-off byte-identity gate: fig9 --quick vs committed baseline"
# The antagonist plane's zero-cost contract — and the crash plane's: with
# no --adversary flag and no crash rates armed the binary must produce
# byte-for-byte the JSON committed before either plane existed. If this
# fails after an *intentional* fig9 format change, regenerate with:
#   RESEX_THREADS=1 ./target/release/repro fig9 --quick --json tests/baselines/fig9_quick.json
cmp tests/baselines/fig9_quick.json "$TMP/fig9_seq.json"
echo "    byte-identical to tests/baselines/fig9_quick.json"

if [ "$TIER" = quick ]; then
    echo "==> OK (quick tier; run bare ./ci.sh for soak/chaos/perf and BENCH artifacts)"
    exit 0
fi

echo "==> fault-matrix smoke: fig9 --quick under 1% loss, 3 fault seeds"
for seed in 1 2 3; do
    "$REPRO" fig9 --quick --faults "loss=0.01,skip=0.02,capfail=0.02,seed=$seed" \
        >/dev/null 2>&1
    echo "    seed=$seed ok"
done

echo "==> faulted-run determinism gate: same fault seed, byte-identical JSON"
FAULTS="loss=0.01,corrupt=0.002,skip=0.02,capfail=0.02,seed=7"
RESEX_THREADS=1 "$REPRO" fig9 --quick --faults "$FAULTS" \
    --json "$TMP/fig9_fault_a.json" >/dev/null 2>&1
RESEX_THREADS=1 "$REPRO" fig9 --quick --faults "$FAULTS" \
    --json "$TMP/fig9_fault_b.json" >/dev/null 2>&1
cmp "$TMP/fig9_fault_a.json" "$TMP/fig9_fault_b.json"
echo "    byte-identical"

echo "==> recovery soak gate: fig9 --quick under 1% loss + periodic link flaps"
# The self-healing layer's acceptance bar: the flapping sweep completes,
# permanently loses nothing (lost=0 on the printed recovery line, which
# only appears when reconnect-with-replay actually happened), and is
# byte-identical across two runs.
SOAK="loss=0.01,flap_ms=50,flap_down_us=2000,seed=7"
RESEX_THREADS=1 "$REPRO" fig9 --quick --faults "$SOAK" \
    --json "$TMP/fig9_soak_a.json" > "$TMP/fig9_soak_a.txt" 2>&1
RESEX_THREADS=1 "$REPRO" fig9 --quick --faults "$SOAK" \
    --json "$TMP/fig9_soak_b.json" > /dev/null 2>&1
cmp "$TMP/fig9_soak_a.json" "$TMP/fig9_soak_b.json"
grep -q "recovery: " "$TMP/fig9_soak_a.txt" || {
    echo "    FAIL: no recovery line — flaps never broke a QP"; exit 1; }
grep "recovery: " "$TMP/fig9_soak_a.txt" | grep -q " lost=0 " || {
    echo "    FAIL: requests permanently lost:"; \
    grep "recovery: " "$TMP/fig9_soak_a.txt"; exit 1; }
sed -n 's/^  recovery:/    survived flaps:/p' "$TMP/fig9_soak_a.txt"
echo "    byte-identical across runs, lost=0"

echo "==> adversary smoke gate: each attacker class completes and replays byte-identically"
for class in burst freeride poison collude; do
    SPEC="class=$class,seed=5"
    RESEX_THREADS=1 "$REPRO" fig9 --quick --adversary "$SPEC" \
        --json "$TMP/fig9_adv_a.json" > "$TMP/fig9_adv_a.txt" 2>&1
    RESEX_THREADS=1 "$REPRO" fig9 --quick --adversary "$SPEC" \
        --json "$TMP/fig9_adv_b.json" >/dev/null 2>&1
    cmp "$TMP/fig9_adv_a.json" "$TMP/fig9_adv_b.json"
    grep -q '"adversary"' "$TMP/fig9_adv_a.json" || {
        echo "    FAIL: $class: attacked run reported no adversary totals"; exit 1; }
    echo "    class=$class ok (complete, totals reported, replay byte-identical)"
done

echo "==> crash soak gate: fig9 --quick under a manager/host/VM crash mix"
# The crash plane's acceptance bar: a sweep peppered with outages in
# every failure domain completes, permanently loses nothing, conserves
# Resos (journal_divergence=0 on the printed crashes line), and replays
# byte-identically.
CRASH="mgr_crash=0.01,mgr_down_ms=20,host_crash=0.002,host_down_ms=10,vm_crash=0.01,vm_down_ms=5,seed=7"
RESEX_THREADS=1 "$REPRO" fig9 --quick --faults "$CRASH" \
    --json "$TMP/fig9_crash_a.json" > "$TMP/fig9_crash_a.txt" 2>&1
RESEX_THREADS=1 "$REPRO" fig9 --quick --faults "$CRASH" \
    --json "$TMP/fig9_crash_b.json" > /dev/null 2>&1
cmp "$TMP/fig9_crash_a.json" "$TMP/fig9_crash_b.json"
grep -q "crashes: " "$TMP/fig9_crash_a.txt" || {
    echo "    FAIL: no crashes line — the crash mix never fired"; exit 1; }
grep "crashes: " "$TMP/fig9_crash_a.txt" | grep -q "journal_divergence=0" || {
    echo "    FAIL: Resos not conserved across outages:"; \
    grep "crashes: " "$TMP/fig9_crash_a.txt"; exit 1; }
if grep -q "recovery: " "$TMP/fig9_crash_a.txt"; then
    grep "recovery: " "$TMP/fig9_crash_a.txt" | grep -q " lost=0 " || {
        echo "    FAIL: requests permanently lost:"; \
        grep "recovery: " "$TMP/fig9_crash_a.txt"; exit 1; }
fi
sed -n 's/^  crashes:/    survived crashes:/p' "$TMP/fig9_crash_a.txt"
echo "    byte-identical across runs, journal_divergence=0, lost=0"

echo "==> chaos explorer gate: fixed seed/budget must find zero invariant violations"
# The explorer generates random fault-schedule compositions and checks
# the global invariant registry over each run; any violation is shrunk
# to a minimal reproducer and fails the gate (nonzero exit). Raise the
# budget for longer soaks with RESEX_CHAOS_BUDGET=N.
CHAOS_BUDGET="${RESEX_CHAOS_BUDGET:-25}"
"$REPRO" chaos --budget "$CHAOS_BUDGET" --seed 5 > "$TMP/chaos.txt" 2>&1 || {
    echo "    FAIL: chaos explorer found violations:"; cat "$TMP/chaos.txt"; exit 1; }
grep -q "violations=0" "$TMP/chaos.txt" || {
    echo "    FAIL: unexpected chaos report:"; cat "$TMP/chaos.txt"; exit 1; }
sed -n 's/^chaos:/    /p' "$TMP/chaos.txt"

echo "==> sweep wall-clock: repro all --quick (per-target timings below)"
t0=$(date +%s.%N)
RESEX_THREADS=1 "$REPRO" all --quick >/dev/null
t1=$(date +%s.%N)
RESEX_THREADS="$PAR_THREADS" "$REPRO" all --quick >/dev/null
t2=$(date +%s.%N)

echo "==> rack scaling: repro rack --quick (128-host sharded rack), RESEX_THREADS=1 vs $PAR_THREADS"
# The sharded calendar's reason to exist: one shard per host hands the
# work-stealing pool genuinely parallel work. Both legs also re-check the
# run's determinism (JSON must not depend on the pool width).
r0=$(date +%s.%N)
RESEX_THREADS=1 "$REPRO" rack --quick --json "$TMP/rack_seq.json" >/dev/null 2>&1
r1=$(date +%s.%N)
RESEX_THREADS="$PAR_THREADS" "$REPRO" rack --quick --json "$TMP/rack_par.json" >/dev/null 2>&1
r2=$(date +%s.%N)
cmp "$TMP/rack_seq.json" "$TMP/rack_par.json"
RACK_HOSTS=$(grep -o '"hosts": [0-9]*' "$TMP/rack_seq.json" | head -1 | awk '{print $2}')

GIT_REV="$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)"
awk -v t0="$t0" -v t1="$t1" -v t2="$t2" -v r0="$r0" -v r1="$r1" -v r2="$r2" \
    -v par="$PAR_THREADS" -v cores="$CORES" -v rev="$GIT_REV" -v hosts="$RACK_HOSTS" '
BEGIN {
    seq = t1 - t0; parallel = t2 - t1;
    rseq = r1 - r0; rpar = r2 - r1;
    printf "    sweep sequential (RESEX_THREADS=1):   %6.2f s\n", seq;
    printf "    sweep parallel   (RESEX_THREADS=%d):   %6.2f s\n", par, parallel;
    printf "    sweep speedup: %.2fx on %d core(s)\n", seq / parallel, cores;
    printf "    rack  sequential (RESEX_THREADS=1):   %6.2f s  (%.1f hosts/s)\n", rseq, hosts / rseq;
    printf "    rack  parallel   (RESEX_THREADS=%d):   %6.2f s  (%.1f hosts/s)\n", par, rpar, hosts / rpar;
    printf "    rack  speedup: %.2fx on %d core(s)\n", rseq / rpar, cores;
    printf "{\n  \"bench\": \"repro all --quick\",\n  \"git_rev\": \"%s\",\n  \"flags\": \"all --quick\",\n  \"cores\": %d,\n  \"threads_parallel\": %d,\n  \"sequential_s\": %.3f,\n  \"parallel_s\": %.3f,\n  \"speedup\": %.3f,\n  \"rack\": {\n    \"bench\": \"repro rack --quick\",\n    \"hosts\": %d,\n    \"sequential_s\": %.3f,\n    \"parallel_s\": %.3f,\n    \"hosts_per_s_sequential\": %.1f,\n    \"hosts_per_s_parallel\": %.1f,\n    \"speedup\": %.3f\n  }\n}\n", rev, cores, par, seq, parallel, seq / parallel, hosts, rseq, rpar, hosts / rseq, hosts / rpar, rseq / rpar > "'"$TMP"'/BENCH_sweep.json";
}'
echo "    staged BENCH_sweep.json (rack leg byte-identical across pool widths)"

echo "==> parallel-speedup gate: pooled sweep must not run slower than sequential"
# On one core the pool resolves to sequential (see vendor/rayon), so the
# two legs time the same binary twice — only noise separates them. On a
# real multi-core host a speedup below 1.0x means the pool actively hurt,
# which is the bug this gate exists to catch.
SPEEDUP=$(grep -o '"speedup": [0-9.]*' "$TMP/BENCH_sweep.json" | head -1 | awk '{print $2}')
if [ "$CORES" -gt 1 ]; then
    awk -v s="$SPEEDUP" 'BEGIN { exit !(s < 1.0) }' && {
        echo "    FAIL: parallel sweep slower than sequential (speedup ${SPEEDUP}x on $CORES cores)"; exit 1; }
    echo "    speedup ${SPEEDUP}x on $CORES cores: ok"
else
    echo "    single core: gate not applicable (speedup ${SPEEDUP}x is noise)"
fi

echo "==> rack scaling gate: the sharded rack must scale with the pool"
# One shard per host means ~128 independent calendars per window: on a
# multi-core host the pool must convert that into wall-clock. ≥4 cores
# must reach 2x; 2–3 cores must at least not slow down; a single core
# only records the numbers (the two legs time the same sequential code).
RACK_SPEEDUP=$(grep -o '"speedup": [0-9.]*' "$TMP/BENCH_sweep.json" | tail -1 | awk '{print $2}')
if [ "$CORES" -ge 4 ]; then
    awk -v s="$RACK_SPEEDUP" 'BEGIN { exit !(s < 2.0) }' && {
        echo "    FAIL: rack speedup ${RACK_SPEEDUP}x < 2.0x on $CORES cores"; exit 1; }
    echo "    rack speedup ${RACK_SPEEDUP}x on $CORES cores: ok (>= 2.0x)"
elif [ "$CORES" -gt 1 ]; then
    awk -v s="$RACK_SPEEDUP" 'BEGIN { exit !(s < 1.0) }' && {
        echo "    FAIL: rack slower with the pool (speedup ${RACK_SPEEDUP}x on $CORES cores)"; exit 1; }
    echo "    rack speedup ${RACK_SPEEDUP}x on $CORES cores: ok (>= 1.0x)"
else
    echo "    single core: gate not applicable (rack speedup ${RACK_SPEEDUP}x recorded)"
fi

echo "==> perf profile: repro profile all --quick -> BENCH_profile.json"
# The committed perf artifact: merged self-profile of the whole sweep
# (top event types by self-time, allocs/event, events/sec, per-target
# wall-clock) stamped with git revision + thread count.
RESEX_THREADS="$PAR_THREADS" "$REPRO" profile all --quick \
    --profile-json "$TMP/BENCH_profile.json" >/dev/null 2>&1
grep -q '"schema": "resex-profile-v1"' "$TMP/BENCH_profile.json" || {
    echo "    FAIL: BENCH_profile.json missing schema"; exit 1; }
grep -q '"git_rev"' "$TMP/BENCH_profile.json" || {
    echo "    FAIL: BENCH_profile.json missing provenance"; exit 1; }
grep -q '"name": "FabricSync"' "$TMP/BENCH_profile.json" || {
    echo "    FAIL: BENCH_profile.json event-type table is empty"; exit 1; }
echo "    staged BENCH_profile.json"

echo "==> perf-regression gate: fresh events/sec vs committed BENCH_profile.json"
# Compares the fresh profile's merged events/sec against the last
# committed artifact. Shared CI boxes are noisy and thread counts may
# legitimately differ between commits, so the tolerance is deliberately
# loose (default: fail below 50% of the committed rate; override with
# RESEX_PERF_TOL=0.xx). It exists to catch order-of-magnitude
# regressions, not single-digit drift.
PERF_TOL="${RESEX_PERF_TOL:-0.5}"
COMMITTED_EPS=$(git show HEAD:BENCH_profile.json 2>/dev/null     | grep -o '"events_per_sec": [0-9.]*' | awk '{print $2}' || true)
FRESH_EPS=$(grep -o '"events_per_sec": [0-9.]*' "$TMP/BENCH_profile.json" | awk '{print $2}')
if [ -n "$COMMITTED_EPS" ] && [ -n "$FRESH_EPS" ]; then
    awk -v f="$FRESH_EPS" -v c="$COMMITTED_EPS" -v tol="$PERF_TOL"         'BEGIN { exit !(f < c * tol) }' && {
        echo "    FAIL: events/sec regressed: $FRESH_EPS < $PERF_TOL * committed $COMMITTED_EPS"; exit 1; }
    echo "    events/sec $FRESH_EPS vs committed $COMMITTED_EPS (tolerance ${PERF_TOL}x): ok"
else
    echo "    no committed BENCH_profile.json at HEAD: gate skipped"
fi

echo "==> bench-artifact stamping: both BENCH files must carry the same revision"
# The two artifacts are only comparable when regenerated together; a
# mixed pair (one stale, one fresh) silently invalidates the speedup and
# events/sec numbers recorded above.
SWEEP_REV=$(grep -o '"git_rev": "[a-z0-9]*"' "$TMP/BENCH_sweep.json" | head -1 | cut -d'"' -f4)
PROF_REV=$(grep -o '"git_rev": "[a-z0-9]*"' "$TMP/BENCH_profile.json" | head -1 | cut -d'"' -f4)
[ "$SWEEP_REV" = "$PROF_REV" ] || {
    echo "    FAIL: BENCH_sweep.json ($SWEEP_REV) and BENCH_profile.json ($PROF_REV) were stamped at different commits"; exit 1; }
echo "    both stamped at $SWEEP_REV"

# Every gate passed: only now do the staged artifacts replace the
# committed ones. A failure anywhere above leaves the repo's BENCH pair
# untouched (and still mutually consistent).
mv "$TMP/BENCH_sweep.json" BENCH_sweep.json
mv "$TMP/BENCH_profile.json" BENCH_profile.json
echo "==> BENCH_sweep.json + BENCH_profile.json updated"

echo "==> OK"
