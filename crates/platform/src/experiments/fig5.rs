//! Figure 5 — application latency timeline under FreeMarket.
//!
//! Paper: the 64 KiB VM's latency under FreeMarket sits between the base
//! and interfered levels, improving whenever the 2 MiB VM's Reso balance
//! runs low and its cap is walked down ("rated capping").

use crate::experiments::{mean_std, Scale, Series};
use crate::scenario::{PolicyKind, ScenarioConfig};
use crate::world::run_scenario;
use resex_simcore::time::SimDuration;
use serde::Serialize;

/// The figure's series and reference levels.
#[derive(Clone, Debug, Serialize)]
pub struct Fig5Result {
    /// Base-case mean latency of the 64 KiB VM, µs.
    pub base_us: f64,
    /// Interfered (unmanaged) mean latency, µs.
    pub interfered_us: f64,
    /// FreeMarket mean latency, µs.
    pub freemarket_us: f64,
    /// 64 KiB VM latency over time under FreeMarket (µs vs seconds).
    pub latency_series: Series,
    /// 2 MiB VM CPU cap over time (percent vs seconds).
    pub cap_series: Series,
}

/// Runs base, interfered, and FreeMarket timeline.
pub fn run(scale: &Scale) -> Fig5Result {
    let mk = |mut cfg: ScenarioConfig, timeline: bool| {
        cfg.duration = if timeline {
            scale.timeline
        } else {
            scale.duration
        };
        cfg.warmup = scale.warmup;
        scale.stamp_faults(&mut cfg);
        scale.stamp_adversary(&mut cfg);
        cfg
    };
    let ((base, intf), fm) = rayon::join(
        || {
            rayon::join(
                || run_scenario(mk(ScenarioConfig::base_case(64 * 1024), false)),
                || run_scenario(mk(ScenarioConfig::interfered(2 * 1024 * 1024), false)),
            )
        },
        || {
            run_scenario(mk(
                ScenarioConfig::managed(2 * 1024 * 1024, PolicyKind::FreeMarket),
                true,
            ))
        },
    );
    let window = SimDuration::from_millis(50);
    Fig5Result {
        base_us: mean_std(&base, "64KB").0,
        interfered_us: mean_std(&intf, "64KB").0,
        freemarket_us: mean_std(&fm, "64KB").0,
        latency_series: Series::from_trace(
            "FreeMarket latency 64KB VM",
            &fm.vm("64KB").unwrap().latency_trace,
            window,
        ),
        cap_series: Series::from_trace(
            "FreeMarket CPU cap 2MB VM",
            &fm.vm("2MB").unwrap().cap_trace,
            window,
        ),
    }
}

impl Fig5Result {
    /// Prints the figure with terminal sparklines.
    pub fn print(&self) {
        println!("Figure 5 — FreeMarket latency timeline (64KB VM)");
        println!("  base latency:       {:>7.1} µs", self.base_us);
        println!("  interfered latency: {:>7.1} µs", self.interfered_us);
        println!("  FreeMarket latency: {:>7.1} µs", self.freemarket_us);
        println!(
            "\n  latency over time:  {}",
            crate::experiments::sparkline(&self.latency_series.points, 60)
        );
        println!(
            "  2MB VM cap:         {}",
            crate::experiments::sparkline(&self.cap_series.points, 60)
        );
        let min_cap = self
            .cap_series
            .points
            .iter()
            .map(|&(_, c)| c)
            .fold(f64::INFINITY, f64::min);
        println!(
            "\n  2MB VM cap range: {:.0}%..100% (rated capping engages each epoch tail)",
            min_cap
        );
    }
}
