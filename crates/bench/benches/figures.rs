//! Whole-figure benchmarks: wall-clock cost of regenerating each paper
//! figure at a reduced scale. One bench per figure keeps the mapping
//! "figure ↔ bench target" explicit and catches regressions in end-to-end
//! simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use resex_platform::experiments::{fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, Scale};
use resex_simcore::time::SimDuration;
use std::hint::black_box;
use std::time::Duration;

/// A miniature scale so each bench iteration stays sub-second.
fn bench_scale() -> Scale {
    Scale {
        duration: SimDuration::from_millis(400),
        timeline: SimDuration::from_millis(800),
        warmup: SimDuration::from_millis(50),
        faults: resex_faults::FaultSpec::default(),
        adversary: resex_adversary::AdversarySpec::default(),
        rack_hosts: 64,
    }
}

fn figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(5));
    let s = bench_scale();
    g.bench_function("fig1_histograms", |b| b.iter(|| black_box(fig1::run(&s))));
    g.bench_function("fig2_server_scaling", |b| {
        b.iter(|| black_box(fig2::run(&s)))
    });
    g.bench_function("fig3_buffer_ratio_caps", |b| {
        b.iter(|| black_box(fig3::run(&s)))
    });
    g.bench_function("fig4_cap_sweep", |b| b.iter(|| black_box(fig4::run(&s))));
    g.bench_function("fig5_freemarket_timeline", |b| {
        b.iter(|| black_box(fig5::run(&s)))
    });
    g.bench_function("fig6_reso_depletion", |b| {
        b.iter(|| black_box(fig6::run(&s)))
    });
    g.bench_function("fig7_ioshares_timeline", |b| {
        b.iter(|| black_box(fig7::run(&s)))
    });
    g.bench_function("fig8_no_interference", |b| {
        b.iter(|| black_box(fig8::run(&s)))
    });
    g.bench_function("fig9_policy_sweep", |b| b.iter(|| black_box(fig9::run(&s))));
    g.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
