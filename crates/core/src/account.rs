//! Per-VM Reso accounts.
//!
//! Each VM holds two sub-balances — one backed by its CPU allocation, one by
//! its share of the link's MTU capacity — replenished at every epoch.
//! "After every epoch we replenish the number of Resos of a VM to the
//! original allocated value. Any Resos left over from the earlier epoch are
//! discarded."

use crate::resos::Resos;
use serde::{Deserialize, Serialize};

/// One VM's currency account.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResoAccount {
    /// CPU Resos granted per epoch.
    pub cpu_alloc: Resos,
    /// I/O Resos granted per epoch (this VM's share of the link pool).
    pub io_alloc: Resos,
    cpu_remaining: Resos,
    io_remaining: Resos,
    /// Epochs this account has lived through.
    pub epochs: u64,
    /// Lifetime Resos charged (both kinds).
    pub lifetime_charged: Resos,
}

impl ResoAccount {
    /// Creates an account with the given per-epoch allocations, starting
    /// fully funded.
    pub fn new(cpu_alloc: Resos, io_alloc: Resos) -> Self {
        ResoAccount {
            cpu_alloc,
            io_alloc,
            cpu_remaining: cpu_alloc,
            io_remaining: io_alloc,
            epochs: 0,
            lifetime_charged: Resos::ZERO,
        }
    }

    /// Remaining CPU balance (may be negative within an interval).
    pub fn cpu_remaining(&self) -> Resos {
        self.cpu_remaining
    }

    /// Remaining I/O balance (may be negative within an interval).
    pub fn io_remaining(&self) -> Resos {
        self.io_remaining
    }

    /// Combined remaining balance.
    pub fn total_remaining(&self) -> Resos {
        self.cpu_remaining + self.io_remaining
    }

    /// Combined per-epoch allocation.
    pub fn total_alloc(&self) -> Resos {
        self.cpu_alloc + self.io_alloc
    }

    /// Remaining balance as a fraction of the allocation (≤ 0 when
    /// overdrawn). This drives FreeMarket's low-balance throttle.
    ///
    /// A zero allocation yields `1.0`: nothing was granted, so nothing is
    /// depleted. (Returning 0 here made zero-allocation VMs look fully
    /// depleted, and the low-balance throttle pinned them at the floor cap
    /// forever.)
    pub fn fraction_remaining(&self) -> f64 {
        let total = self.total_alloc();
        if total == Resos::ZERO {
            return 1.0;
        }
        self.total_remaining().fraction_of(total)
    }

    /// Charges CPU usage; returns the amount charged.
    pub fn charge_cpu(&mut self, amount: Resos) -> Resos {
        self.cpu_remaining -= amount;
        self.lifetime_charged += amount;
        amount
    }

    /// Charges I/O usage; returns the amount charged.
    pub fn charge_io(&mut self, amount: Resos) -> Resos {
        self.io_remaining -= amount;
        self.lifetime_charged += amount;
        amount
    }

    /// Epoch boundary: discard leftovers, refill to the allocation.
    /// Optionally installs new allocations (weighted redistribution can
    /// change a VM's share between epochs).
    ///
    /// Overdrafts are forgiven (the paper resets to the allocation) — a
    /// property a spend-to-zero free-rider exploits. Use
    /// [`ResoAccount::replenish_with`] with `carry_debt` to close it.
    pub fn replenish(&mut self, new_alloc: Option<(Resos, Resos)>) {
        self.replenish_with(new_alloc, false);
    }

    /// Epoch boundary with an explicit overdraft policy. With `carry_debt`
    /// the new balance is `alloc + min(remaining, 0)`: savings are still
    /// discarded, but debt run up by overspending carries into the next
    /// epoch, so a free-rider who spent to zero (or past it) starts the
    /// next epoch already down and cannot regain full priority within one
    /// charging interval of the boundary.
    pub fn replenish_with(&mut self, new_alloc: Option<(Resos, Resos)>, carry_debt: bool) {
        if let Some((cpu, io)) = new_alloc {
            self.cpu_alloc = cpu;
            self.io_alloc = io;
        }
        if carry_debt {
            self.cpu_remaining = self.cpu_alloc + self.cpu_remaining.min(Resos::ZERO);
            self.io_remaining = self.io_alloc + self.io_remaining.min(Resos::ZERO);
        } else {
            self.cpu_remaining = self.cpu_alloc;
            self.io_remaining = self.io_alloc;
        }
        self.epochs += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct() -> ResoAccount {
        ResoAccount::new(Resos::from_whole(100_000), Resos::from_whole(524_288))
    }

    #[test]
    fn starts_fully_funded() {
        let a = acct();
        assert_eq!(a.cpu_remaining(), a.cpu_alloc);
        assert_eq!(a.io_remaining(), a.io_alloc);
        assert!((a.fraction_remaining() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn charges_deduct() {
        let mut a = acct();
        a.charge_cpu(Resos::from_whole(100));
        a.charge_io(Resos::from_whole(1024));
        assert_eq!(a.cpu_remaining(), Resos::from_whole(99_900));
        assert_eq!(a.io_remaining(), Resos::from_whole(523_264));
        assert_eq!(a.lifetime_charged, Resos::from_whole(1124));
    }

    #[test]
    fn can_overdraw_within_interval() {
        let mut a = ResoAccount::new(Resos::from_whole(10), Resos::from_whole(10));
        a.charge_io(Resos::from_whole(25));
        assert!(a.io_remaining().is_negative());
        assert!(a.fraction_remaining() < 0.0);
    }

    #[test]
    fn replenish_discards_leftovers() {
        let mut a = acct();
        a.charge_cpu(Resos::from_whole(60_000));
        a.replenish(None);
        assert_eq!(a.cpu_remaining(), a.cpu_alloc, "no carry-over of savings");
        assert_eq!(a.epochs, 1);
        // Overdrafts are forgiven too (the paper resets to the allocation).
        a.charge_io(a.io_alloc + Resos::from_whole(999));
        a.replenish(None);
        assert_eq!(a.io_remaining(), a.io_alloc);
    }

    #[test]
    fn replenish_can_install_new_allocation() {
        let mut a = acct();
        a.replenish(Some((Resos::from_whole(50_000), Resos::from_whole(100))));
        assert_eq!(a.cpu_alloc, Resos::from_whole(50_000));
        assert_eq!(a.io_remaining(), Resos::from_whole(100));
    }

    #[test]
    fn zero_allocation_is_fully_funded_not_depleted() {
        // Regression: this returned 0.0 ("fully depleted") and tripped the
        // low-balance throttle for VMs that were never granted anything.
        let a = ResoAccount::new(Resos::ZERO, Resos::ZERO);
        assert_eq!(a.fraction_remaining(), 1.0);
    }

    #[test]
    fn debt_carryover_keeps_overdrafts_but_discards_savings() {
        let mut a = ResoAccount::new(Resos::from_whole(100), Resos::from_whole(100));
        // Overspend I/O by 40, leave 30 CPU unspent.
        a.charge_io(Resos::from_whole(140));
        a.charge_cpu(Resos::from_whole(70));
        a.replenish_with(None, true);
        assert_eq!(a.io_remaining(), Resos::from_whole(60), "debt carried");
        assert_eq!(a.cpu_remaining(), a.cpu_alloc, "savings still discarded");
        // A free-rider deep in debt stays below the 10% low-balance line
        // right through the epoch boundary.
        let mut fr = ResoAccount::new(Resos::from_whole(100), Resos::from_whole(100));
        fr.charge_io(Resos::from_whole(300));
        assert!(fr.fraction_remaining() < 0.1);
        fr.replenish_with(None, true);
        assert!(
            fr.fraction_remaining() < 0.1,
            "spend-to-zero cannot regain full priority at the boundary: {}",
            fr.fraction_remaining()
        );
        // Legacy replenish still forgives.
        fr.replenish(None);
        assert!((fr.fraction_remaining() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_tracks_combined_balance() {
        let mut a = ResoAccount::new(Resos::from_whole(50), Resos::from_whole(50));
        a.charge_cpu(Resos::from_whole(50));
        a.charge_io(Resos::from_whole(40));
        assert!((a.fraction_remaining() - 0.1).abs() < 1e-12);
    }
}
