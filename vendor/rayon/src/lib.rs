//! Vendored offline `rayon`: the same API surface the workspace already
//! calls — [`join`], `prelude::IntoParallelIterator`, `prelude::ParallelSlice`,
//! positional `collect` — backed by a **real work-stealing thread pool**
//! (`std::thread` workers, one deque per worker, a shared injector; see
//! [`pool`]). No registry access is needed: everything is `std`.
//!
//! # Execution model
//!
//! The global pool spins up lazily on first use with one worker per
//! available core. [`join`] pushes its second closure as a stealable job
//! and runs the first inline; while waiting it executes other pool work,
//! so nested joins (the experiment sweeps nest two or three deep) keep
//! every core busy. `into_par_iter().map(f).collect()` recursively splits
//! the input range via `join` and writes each result into the slot
//! matching its input position.
//!
//! # Determinism
//!
//! Results are **byte-identical to sequential execution**: `join` returns
//! positionally, parallel maps collect positionally, and the workloads
//! this workspace runs on the pool (whole discrete-event simulations) are
//! self-contained — they share no mutable state. Scheduling order varies
//! between runs; outputs do not. The tier-1 suite asserts this
//! (`tests/pool.rs`, `crates/bench/tests/determinism.rs`).
//!
//! # `RESEX_THREADS`
//!
//! Set `RESEX_THREADS=N` to force the pool width; `RESEX_THREADS=1`
//! disables the pool entirely (everything runs inline on the caller,
//! the debugging baseline). Unset, the width is
//! `std::thread::available_parallelism()`. In-process callers (tests)
//! may use [`set_num_threads`] before the pool's first use. On a
//! single-core host every request resolves to 1: parallelism that can't
//! actually run concurrently only adds preemption and lock contention.

pub mod iter;
pub mod pool;

pub use pool::{current_num_threads, set_num_threads};

/// Runs both closures, potentially in parallel, and returns their results
/// positionally: `(a's result, b's result)`, always.
///
/// `b` is made available for stealing while the caller runs `a`; if no
/// other worker takes it, the caller runs it too. If either closure
/// panics, the panic is re-raised on the caller's thread — after both
/// closures have stopped touching the caller's stack frame.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    pool::join(a, b)
}

/// `rayon::prelude` — parallel-iterator conversion traits.
pub mod prelude {
    pub use crate::iter::{FromParallelIterator, ParIter, ParMap};

    /// Conversion into a parallel iterator running on the global pool.
    pub trait IntoParallelIterator {
        /// The parallel iterator type produced.
        type Iter;
        /// The element type.
        type Item: Send;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I> IntoParallelIterator for I
    where
        I: IntoIterator,
        I::Item: Send,
    {
        type Iter = ParIter<I::Item>;
        type Item = I::Item;
        fn into_par_iter(self) -> ParIter<I::Item> {
            ParIter::new(self.into_iter().collect())
        }
    }

    /// Slice-side conversion: `par_iter()` over shared references.
    pub trait ParallelSlice<T: Sync> {
        /// Iterates the slice in parallel (by shared reference).
        fn par_iter(&self) -> ParIter<&T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParIter<&T> {
            ParIter::new(self.iter().collect())
        }
    }
}
