//! Foreign mappings — the introspection path.
//!
//! Xen's `xc_map_foreign_range` lets a privileged domain (dom0) map another
//! domain's physical pages into its own address space and read them while the
//! guest — and the HCA — keep writing. [`ForeignMapping`] is the simulated
//! analogue: a window `[base, base+len)` over another domain's
//! [`GuestMemory`], offering read (and optionally write)
//! access through the same shared storage, so the monitor observes DMA'd
//! bytes with zero-copy semantics.

use crate::error::MemError;
use crate::memory::{Gpa, GuestMemory, MemoryHandle};
use parking_lot::RwLock;
use std::sync::Arc;

/// A mapped window into a (foreign) domain's guest memory.
#[derive(Clone)]
pub struct ForeignMapping {
    mem: Arc<RwLock<GuestMemory>>,
    base: Gpa,
    len: usize,
    writable: bool,
}

impl ForeignMapping {
    /// Maps `[base, base+len)` of `target` read-only.
    ///
    /// Fails if the window exceeds the target address space — like the real
    /// hypercall, you cannot map frames the domain does not own.
    pub fn map(target: &MemoryHandle, base: Gpa, len: usize) -> Result<Self, MemError> {
        Self::map_inner(target, base, len, false)
    }

    /// Maps `[base, base+len)` of `target` read-write (used by control-path
    /// tooling; IBMon itself only ever reads).
    pub fn map_rw(target: &MemoryHandle, base: Gpa, len: usize) -> Result<Self, MemError> {
        Self::map_inner(target, base, len, true)
    }

    fn map_inner(
        target: &MemoryHandle,
        base: Gpa,
        len: usize,
        writable: bool,
    ) -> Result<Self, MemError> {
        let size = target.size();
        if base.raw().checked_add(len as u64).is_none_or(|e| e > size) {
            return Err(MemError::OutOfBounds {
                gpa: base,
                len,
                size,
            });
        }
        Ok(ForeignMapping {
            mem: target.share(),
            base,
            len,
            writable,
        })
    }

    /// Base guest-physical address of the window.
    pub fn base(&self) -> Gpa {
        self.base
    }

    /// Window length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn check(&self, offset: usize, len: usize) -> Result<(), MemError> {
        if offset.checked_add(len).is_none_or(|e| e > self.len) {
            return Err(MemError::OutOfBounds {
                gpa: self.base.add(offset as u64),
                len,
                size: self.base.raw() + self.len as u64,
            });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes at `offset` within the window.
    pub fn read_at(&self, offset: usize, buf: &mut [u8]) -> Result<(), MemError> {
        self.check(offset, buf.len())?;
        self.mem.read().read(self.base.add(offset as u64), buf)
    }

    /// Reads a little-endian `u32` at `offset`.
    pub fn read_u32_at(&self, offset: usize) -> Result<u32, MemError> {
        let mut b = [0u8; 4];
        self.read_at(offset, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64` at `offset`.
    pub fn read_u64_at(&self, offset: usize) -> Result<u64, MemError> {
        let mut b = [0u8; 8];
        self.read_at(offset, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Snapshots the whole window into a fresh buffer.
    pub fn snapshot(&self) -> Result<Vec<u8>, MemError> {
        let mut buf = vec![0u8; self.len];
        self.read_at(0, &mut buf)?;
        Ok(buf)
    }

    /// Writes through the mapping (read-write mappings only).
    ///
    /// # Panics
    /// If the mapping is read-only — writing through a read-only foreign
    /// mapping is a programming error, not a runtime condition.
    pub fn write_at(&self, offset: usize, buf: &[u8]) -> Result<(), MemError> {
        assert!(self.writable, "write through a read-only foreign mapping");
        self.check(offset, buf.len())?;
        self.mem.write().write(self.base.add(offset as u64), buf)
    }
}

impl std::fmt::Debug for ForeignMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ForeignMapping {{ base: {:?}, len: {}, writable: {} }}",
            self.base, self.len, self.writable
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_sees_guest_writes() {
        let guest = MemoryHandle::new(64 * 1024);
        let map = ForeignMapping::map(&guest, Gpa::new(4096), 8192).unwrap();
        guest.write(Gpa::new(4096 + 100), &[7, 8, 9]).unwrap();
        let mut b = [0u8; 3];
        map.read_at(100, &mut b).unwrap();
        assert_eq!(b, [7, 8, 9]);
    }

    #[test]
    fn mapping_sees_dma_writes() {
        let guest = MemoryHandle::new(64 * 1024);
        guest
            .with_write(|m| m.pin_range(Gpa::new(0), 4096))
            .unwrap();
        let map = ForeignMapping::map(&guest, Gpa::new(0), 4096).unwrap();
        guest
            .dma_write(Gpa::new(16), &0xDEAD_BEEFu32.to_le_bytes())
            .unwrap();
        assert_eq!(map.read_u32_at(16).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn window_bounds_are_enforced() {
        let guest = MemoryHandle::new(16 * 1024);
        assert!(ForeignMapping::map(&guest, Gpa::new(8192), 16 * 1024).is_err());
        let map = ForeignMapping::map(&guest, Gpa::new(0), 4096).unwrap();
        let mut b = [0u8; 8];
        assert!(map.read_at(4090, &mut b).is_err());
        assert!(map.read_at(4088, &mut b).is_ok());
    }

    #[test]
    fn snapshot_copies_window() {
        let guest = MemoryHandle::new(8 * 1024);
        guest.write(Gpa::new(0), &[1, 2, 3, 4]).unwrap();
        let map = ForeignMapping::map(&guest, Gpa::new(0), 16).unwrap();
        let snap = map.snapshot().unwrap();
        assert_eq!(&snap[..4], &[1, 2, 3, 4]);
        assert_eq!(snap.len(), 16);
        // A snapshot is a copy: later guest writes don't alter it.
        guest.write(Gpa::new(0), &[9]).unwrap();
        assert_eq!(snap[0], 1);
    }

    #[test]
    fn rw_mapping_writes_through() {
        let guest = MemoryHandle::new(8 * 1024);
        let map = ForeignMapping::map_rw(&guest, Gpa::new(0), 64).unwrap();
        map.write_at(10, &[42]).unwrap();
        let mut b = [0u8; 1];
        guest.read(Gpa::new(10), &mut b).unwrap();
        assert_eq!(b[0], 42);
    }

    #[test]
    #[should_panic]
    fn read_only_mapping_rejects_writes() {
        let guest = MemoryHandle::new(8 * 1024);
        let map = ForeignMapping::map(&guest, Gpa::new(0), 64).unwrap();
        let _ = map.write_at(0, &[1]);
    }

    #[test]
    fn u64_accessor() {
        let guest = MemoryHandle::new(8 * 1024);
        guest
            .with_write(|m| m.write_u64(Gpa::new(24), 0xABCD_EF01_2345_6789))
            .unwrap();
        let map = ForeignMapping::map(&guest, Gpa::new(0), 64).unwrap();
        assert_eq!(map.read_u64_at(24).unwrap(), 0xABCD_EF01_2345_6789);
    }
}
