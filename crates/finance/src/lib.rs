#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # resex-finance — financial processing library
//!
//! The compute substrate of the BenchEx trading benchmark, standing in for
//! the proprietary processing of a real exchange (the paper used Ødegaard's
//! C++ finance library (paper ref. 1) for the same purpose): Black–Scholes pricing and
//! Greeks, implied-volatility inversion, and Cox–Ross–Rubinstein binomial
//! lattices, plus transaction-level [`batch::PricingTask`]s whose work
//! estimates drive simulated per-request compute times.

pub mod batch;
pub mod binomial;
pub mod black_scholes;
pub mod implied;
pub mod monte_carlo;
pub mod norm;

pub use batch::{PricingTask, TaskKind, TaskResult};
pub use binomial::{crr_price, Exercise};
pub use black_scholes::{Greeks, OptionKind, OptionSpec};
pub use implied::{implied_vol, ImpliedVolError};
pub use monte_carlo::{mc_price, McEstimate};
