//! Exchange workload traces.
//!
//! The paper's BenchEx "includes traces which model the I/O and processing
//! workloads present in an exchange like ICE". Real ICE traces are
//! proprietary, so [`TraceGen`] synthesizes transaction mixes with the
//! load-shape features that matter to the experiments: a configurable blend
//! of light quotes, medium risk checks, and heavy repricings, plus optional
//! burst regimes (markets alternate calm and frantic periods).

use resex_finance::{PricingTask, TaskKind};
use resex_simcore::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Relative weights of the transaction mix.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TaskMix {
    /// Weight of plain quotes (light).
    pub quote: u32,
    /// Weight of risk checks (medium).
    pub risk: u32,
    /// Weight of binomial repricings (heavy).
    pub reprice: u32,
    /// Weight of implied-vol solves (medium-heavy).
    pub implied: u32,
}

impl Default for TaskMix {
    fn default() -> Self {
        // Quote-dominated, like real exchange order flow.
        TaskMix {
            quote: 90,
            risk: 7,
            reprice: 1,
            implied: 2,
        }
    }
}

/// Burst behaviour of the trace.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum Burstiness {
    /// Uniform mix throughout.
    Steady,
    /// Alternate calm and bursty regimes; during a burst, batch sizes are
    /// multiplied (heavier transactions, more I/O per response).
    Bursty {
        /// Transactions per regime.
        regime_len: u32,
        /// Batch-size multiplier during bursts.
        burst_factor: u32,
    },
    /// Adversarial telemetry-poisoning shape: each cycle emits a few huge
    /// batches and then chases them with a long run of minimal ones. Timed
    /// against a ring-scan monitor, the tiny completions wrap the large
    /// CQEs off the ring between scans, so the per-slot size average the
    /// scanner extrapolates from is biased far low.
    Cycle {
        /// Huge transactions at the head of each cycle.
        big_len: u32,
        /// Batch-size multiplier for the huge transactions.
        big_factor: u32,
        /// Minimal (batch-1) transactions chasing them.
        tiny_len: u32,
    },
}

/// Trace configuration.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TraceProfile {
    /// Transaction mix weights.
    pub mix: TaskMix,
    /// Base options per transaction.
    pub base_batch: u32,
    /// Lattice depth for repricing transactions.
    pub reprice_steps: u32,
    /// Burst structure.
    pub burstiness: Burstiness,
}

impl Default for TraceProfile {
    fn default() -> Self {
        TraceProfile {
            mix: TaskMix::default(),
            // 8 quote units ≈ 100 µs of CPU with the default server config.
            base_batch: 8,
            reprice_steps: 24,
            burstiness: Burstiness::Steady,
        }
    }
}

impl TraceProfile {
    /// A uniform profile where *every* transaction is a quote batch of the
    /// given size — the fixed-cost workload the paper's latency figures use.
    pub fn uniform_quotes(batch: u32) -> Self {
        TraceProfile {
            mix: TaskMix {
                quote: 1,
                risk: 0,
                reprice: 0,
                implied: 0,
            },
            base_batch: batch,
            reprice_steps: 0,
            burstiness: Burstiness::Steady,
        }
    }

    /// An attacker's amplified quote flood: `uniform_quotes` with the batch
    /// scaled by `amplification` (≥ 1; rounded, floored at 1). Burst- and
    /// free-ride-class adversaries push this much more traffic than the
    /// honest interferer they masquerade as.
    pub fn amplified_quotes(batch: u32, amplification: f64) -> Self {
        let amp = amplification.max(1.0);
        TraceProfile::uniform_quotes(((batch as f64 * amp).round() as u32).max(1))
    }

    /// A telemetry-poisoning trace: cycles of `big` huge quote batches
    /// (each `big_factor` × the base) chased by `repaint` minimal ones —
    /// see [`Burstiness::Cycle`].
    pub fn poison_cycle(batch: u32, big: u32, big_factor: u32, repaint: u32) -> Self {
        TraceProfile {
            burstiness: Burstiness::Cycle {
                big_len: big.max(1),
                big_factor: big_factor.max(1),
                tiny_len: repaint.max(1),
            },
            ..TraceProfile::uniform_quotes(batch)
        }
    }
}

/// A fixed transaction sequence, recordable to / loadable from JSON — the
/// mechanism behind the paper's "traces which model the I/O and processing
/// workloads present in an exchange": generate once, inspect or edit, then
/// replay byte-identically across experiments.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecordedTrace {
    /// The transactions, in order.
    pub tasks: Vec<PricingTask>,
}

impl RecordedTrace {
    /// Records `n` transactions from a generator.
    pub fn capture(gen: &mut TraceGen, n: usize) -> Self {
        RecordedTrace {
            tasks: (0..n).map(|_| gen.next_task()).collect(),
        }
    }
}

/// Deterministic transaction generator (or replayer).
pub struct TraceGen {
    profile: TraceProfile,
    rng: SimRng,
    emitted: u64,
    replay: Option<Vec<PricingTask>>,
}

impl TraceGen {
    /// Creates a generator with the given profile and seed.
    pub fn new(profile: TraceProfile, seed: u64) -> Self {
        TraceGen {
            profile,
            rng: SimRng::seed_from_u64(seed),
            emitted: 0,
            replay: None,
        }
    }

    /// Creates a replayer over a recorded trace (cycles at the end).
    ///
    /// # Panics
    /// If the trace is empty.
    pub fn replay(trace: RecordedTrace) -> Self {
        assert!(!trace.tasks.is_empty(), "cannot replay an empty trace");
        TraceGen {
            profile: TraceProfile::default(),
            rng: SimRng::seed_from_u64(0),
            emitted: 0,
            replay: Some(trace.tasks),
        }
    }

    /// Transactions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// The next transaction's pricing task.
    pub fn next_task(&mut self) -> PricingTask {
        if let Some(tasks) = &self.replay {
            let task = tasks[(self.emitted % tasks.len() as u64) as usize];
            self.emitted += 1;
            return task;
        }
        self.next_generated()
    }

    /// The next freshly generated task (bypasses replay).
    fn next_generated(&mut self) -> PricingTask {
        let m = self.profile.mix;
        let total = (m.quote + m.risk + m.reprice + m.implied).max(1) as u64;
        let roll = self.rng.next_below(total) as u32;
        let kind = if roll < m.quote {
            TaskKind::Quote
        } else if roll < m.quote + m.risk {
            TaskKind::Risk
        } else if roll < m.quote + m.risk + m.reprice {
            TaskKind::Reprice {
                steps: self.profile.reprice_steps.max(1),
            }
        } else {
            TaskKind::ImpliedVol
        };
        let n_options = match self.profile.burstiness {
            Burstiness::Steady => self.profile.base_batch.max(1),
            Burstiness::Bursty {
                regime_len,
                burst_factor,
            } => {
                let regime = (self.emitted / regime_len.max(1) as u64) % 2;
                let mult = if regime == 1 { burst_factor.max(1) } else { 1 };
                (self.profile.base_batch * mult).max(1)
            }
            Burstiness::Cycle {
                big_len,
                big_factor,
                tiny_len,
            } => {
                let cycle = (big_len.max(1) + tiny_len.max(1)) as u64;
                if self.emitted % cycle < big_len.max(1) as u64 {
                    (self.profile.base_batch * big_factor.max(1)).max(1)
                } else {
                    1
                }
            }
        };
        let seed = self.rng.next_u64();
        self.emitted += 1;
        PricingTask {
            kind,
            n_options,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = TraceGen::new(TraceProfile::default(), 7);
        let mut b = TraceGen::new(TraceProfile::default(), 7);
        for _ in 0..100 {
            assert_eq!(a.next_task(), b.next_task());
        }
    }

    #[test]
    fn mix_roughly_matches_weights() {
        let mut g = TraceGen::new(TraceProfile::default(), 1);
        let n = 10_000;
        let mut quotes = 0;
        for _ in 0..n {
            if matches!(g.next_task().kind, TaskKind::Quote) {
                quotes += 1;
            }
        }
        let frac = quotes as f64 / n as f64;
        assert!((frac - 0.90).abs() < 0.02, "quote fraction {frac}");
    }

    #[test]
    fn uniform_quotes_is_constant_cost() {
        let mut g = TraceGen::new(TraceProfile::uniform_quotes(8), 3);
        for _ in 0..50 {
            let t = g.next_task();
            assert_eq!(t.kind, TaskKind::Quote);
            assert_eq!(t.n_options, 8);
            assert_eq!(t.work_estimate(), 8);
        }
    }

    #[test]
    fn bursts_alternate_batch_sizes() {
        let profile = TraceProfile {
            burstiness: Burstiness::Bursty {
                regime_len: 10,
                burst_factor: 4,
            },
            ..TraceProfile::uniform_quotes(8)
        };
        let mut g = TraceGen::new(profile, 5);
        let sizes: Vec<u32> = (0..30).map(|_| g.next_task().n_options).collect();
        assert!(sizes[..10].iter().all(|&s| s == 8), "calm regime");
        assert!(sizes[10..20].iter().all(|&s| s == 32), "burst regime");
        assert!(sizes[20..30].iter().all(|&s| s == 8), "calm again");
    }

    #[test]
    fn poison_cycle_repaints_after_big_batches() {
        let mut g = TraceGen::new(TraceProfile::poison_cycle(8, 2, 16, 5), 9);
        let sizes: Vec<u32> = (0..14).map(|_| g.next_task().n_options).collect();
        assert_eq!(&sizes[..2], &[128, 128], "big head");
        assert!(sizes[2..7].iter().all(|&s| s == 1), "tiny repaint tail");
        assert_eq!(&sizes[7..9], &[128, 128], "cycle repeats");
        assert!(sizes[9..14].iter().all(|&s| s == 1));
    }

    #[test]
    fn amplified_quotes_scales_the_batch() {
        let p = TraceProfile::amplified_quotes(8, 4.5);
        assert_eq!(p.base_batch, 36);
        // Sub-unit amplification never shrinks the honest batch.
        assert_eq!(TraceProfile::amplified_quotes(8, 0.5).base_batch, 8);
    }

    #[test]
    fn recorded_trace_replays_identically() {
        let mut original = TraceGen::new(TraceProfile::default(), 11);
        let recorded = RecordedTrace::capture(&mut original, 25);
        let mut fresh = TraceGen::new(TraceProfile::default(), 11);
        let mut replayer = TraceGen::replay(recorded.clone());
        for i in 0..25 {
            let expect = fresh.next_task();
            assert_eq!(recorded.tasks[i], expect);
            assert_eq!(replayer.next_task(), expect);
        }
    }

    #[test]
    fn replay_cycles_at_the_end() {
        let mut g = TraceGen::new(TraceProfile::uniform_quotes(4), 1);
        let recorded = RecordedTrace::capture(&mut g, 3);
        let mut r = TraceGen::replay(recorded.clone());
        let first_pass: Vec<_> = (0..3).map(|_| r.next_task()).collect();
        let second_pass: Vec<_> = (0..3).map(|_| r.next_task()).collect();
        assert_eq!(first_pass, second_pass, "wraps around");
        assert_eq!(r.emitted(), 6);
    }

    #[test]
    #[should_panic]
    fn empty_replay_rejected() {
        TraceGen::replay(RecordedTrace { tasks: vec![] });
    }

    #[test]
    fn batch_is_never_zero() {
        let profile = TraceProfile {
            base_batch: 0,
            ..TraceProfile::default()
        };
        let mut g = TraceGen::new(profile, 1);
        assert!(g.next_task().n_options >= 1);
    }
}
