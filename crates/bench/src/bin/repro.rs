//! `repro` — regenerate every figure of the ResEx paper.
//!
//! ```text
//! cargo run -p resex-bench --release --bin repro -- all
//! cargo run -p resex-bench --release --bin repro -- fig7 --full
//! cargo run -p resex-bench --release --bin repro -- fig9 --json out.json
//! ```
//!
//! Targets: `fig1` … `fig9`, `ablation`, `all`. `--quick` (default) runs
//! CI-scale simulations; `--full` runs paper-shaped spans. `--json PATH`
//! additionally dumps the figure data as JSON for plotting.

use resex_platform::experiments::{
    ablation, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, hw_qos, scaling, Scale,
};
use serde_json::{json, Value};
use std::io::Write;

fn usage() -> ! {
    eprintln!("usage: repro <fig1|...|fig9|ablation|hw_qos|scaling|all> [--quick|--full] [--json PATH]");
    std::process::exit(2);
}

fn run_target(target: &str, scale: &Scale) -> Value {
    let t0 = std::time::Instant::now();
    let value = match target {
        "fig1" => {
            let r = fig1::run(scale);
            r.print();
            json!({ "fig1": r })
        }
        "fig2" => {
            let r = fig2::run(scale);
            r.print();
            json!({ "fig2": r })
        }
        "fig3" => {
            let r = fig3::run(scale);
            r.print();
            json!({ "fig3": r })
        }
        "fig4" => {
            let r = fig4::run(scale);
            r.print();
            json!({ "fig4": r })
        }
        "fig5" => {
            let r = fig5::run(scale);
            r.print();
            json!({ "fig5": r })
        }
        "fig6" => {
            let r = fig6::run(scale);
            r.print();
            json!({ "fig6": r })
        }
        "fig7" => {
            let r = fig7::run(scale);
            r.print();
            json!({ "fig7": r })
        }
        "fig8" => {
            let r = fig8::run(scale);
            r.print();
            json!({ "fig8": r })
        }
        "fig9" => {
            let r = fig9::run(scale);
            r.print();
            json!({ "fig9": r })
        }
        "ablation" => {
            let r = ablation::run(scale);
            r.print();
            json!({ "ablation": r })
        }
        "hw_qos" => {
            let r = hw_qos::run(scale);
            r.print();
            json!({ "hw_qos": r })
        }
        "scaling" => {
            let r = scaling::run(scale);
            r.print();
            json!({ "scaling": r })
        }
        _ => usage(),
    };
    eprintln!("[{target} done in {:.1}s]\n", t0.elapsed().as_secs_f64());
    value
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut target = None;
    let mut scale = Scale::quick();
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::quick(),
            "--full" => scale = Scale::full(),
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            t if target.is_none() => target = Some(t.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let target = target.unwrap_or_else(|| usage());

    let targets: Vec<&str> = if target == "all" {
        vec![
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "ablation",
            "hw_qos", "scaling",
        ]
    } else {
        vec![target.as_str()]
    };

    let mut doc = serde_json::Map::new();
    for t in targets {
        let v = run_target(t, &scale);
        if let Value::Object(m) = v {
            doc.extend(m);
        }
        println!();
    }

    if let Some(path) = json_path {
        let mut f = std::fs::File::create(&path).expect("create json output");
        serde_json::to_writer_pretty(&mut f, &Value::Object(doc)).expect("write json");
        writeln!(f).ok();
        eprintln!("wrote {path}");
    }
}
