//! Black–Scholes option pricing and Greeks.
//!
//! The BenchEx server uses these routines as its per-request processing
//! workload, standing in for the proprietary trade-matching code of a real
//! exchange (the paper used Ødegaard's C++ finance library the same way).

use crate::norm::{cdf, pdf};
use serde::{Deserialize, Serialize};

/// Call or put.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum OptionKind {
    /// Right to buy at the strike.
    Call,
    /// Right to sell at the strike.
    Put,
}

/// Terms of a European option plus market inputs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OptionSpec {
    /// Call or put.
    pub kind: OptionKind,
    /// Spot price of the underlying (> 0).
    pub spot: f64,
    /// Strike price (> 0).
    pub strike: f64,
    /// Continuously compounded risk-free rate.
    pub rate: f64,
    /// Volatility of the underlying (> 0).
    pub sigma: f64,
    /// Time to expiry in years (> 0).
    pub expiry: f64,
}

/// First-order risk sensitivities.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Greeks {
    /// ∂V/∂S.
    pub delta: f64,
    /// ∂²V/∂S².
    pub gamma: f64,
    /// ∂V/∂σ (per 1.0 of vol, not per percentage point).
    pub vega: f64,
    /// ∂V/∂t (per year; negative for long options).
    pub theta: f64,
    /// ∂V/∂r.
    pub rho: f64,
}

impl OptionSpec {
    /// Validates the market inputs.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.spot > 0.0 && self.spot.is_finite()) {
            return Err(format!("spot must be positive, got {}", self.spot));
        }
        if !(self.strike > 0.0 && self.strike.is_finite()) {
            return Err(format!("strike must be positive, got {}", self.strike));
        }
        if !(self.sigma > 0.0 && self.sigma.is_finite()) {
            return Err(format!("sigma must be positive, got {}", self.sigma));
        }
        if !(self.expiry > 0.0 && self.expiry.is_finite()) {
            return Err(format!("expiry must be positive, got {}", self.expiry));
        }
        if !self.rate.is_finite() {
            return Err("rate must be finite".into());
        }
        Ok(())
    }

    fn d1_d2(&self) -> (f64, f64) {
        let sqrt_t = self.expiry.sqrt();
        let d1 = ((self.spot / self.strike).ln()
            + (self.rate + 0.5 * self.sigma * self.sigma) * self.expiry)
            / (self.sigma * sqrt_t);
        (d1, d1 - self.sigma * sqrt_t)
    }

    /// The Black–Scholes price.
    pub fn price(&self) -> f64 {
        let (d1, d2) = self.d1_d2();
        let df = (-self.rate * self.expiry).exp();
        match self.kind {
            OptionKind::Call => self.spot * cdf(d1) - self.strike * df * cdf(d2),
            OptionKind::Put => self.strike * df * cdf(-d2) - self.spot * cdf(-d1),
        }
    }

    /// All first-order Greeks in one pass (shares the d1/d2 computation).
    pub fn greeks(&self) -> Greeks {
        let (d1, d2) = self.d1_d2();
        let sqrt_t = self.expiry.sqrt();
        let df = (-self.rate * self.expiry).exp();
        let gamma = pdf(d1) / (self.spot * self.sigma * sqrt_t);
        let vega = self.spot * pdf(d1) * sqrt_t;
        match self.kind {
            OptionKind::Call => Greeks {
                delta: cdf(d1),
                gamma,
                vega,
                theta: -(self.spot * pdf(d1) * self.sigma) / (2.0 * sqrt_t)
                    - self.rate * self.strike * df * cdf(d2),
                rho: self.strike * self.expiry * df * cdf(d2),
            },
            OptionKind::Put => Greeks {
                delta: cdf(d1) - 1.0,
                gamma,
                vega,
                theta: -(self.spot * pdf(d1) * self.sigma) / (2.0 * sqrt_t)
                    + self.rate * self.strike * df * cdf(-d2),
                rho: -self.strike * self.expiry * df * cdf(-d2),
            },
        }
    }

    /// The same option with the other kind (call ↔ put).
    pub fn flipped(&self) -> OptionSpec {
        OptionSpec {
            kind: match self.kind {
                OptionKind::Call => OptionKind::Put,
                OptionKind::Put => OptionKind::Call,
            },
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atm_call() -> OptionSpec {
        OptionSpec {
            kind: OptionKind::Call,
            spot: 100.0,
            strike: 100.0,
            rate: 0.05,
            sigma: 0.2,
            expiry: 1.0,
        }
    }

    #[test]
    fn textbook_call_price() {
        // Hull's canonical example: S=K=100, r=5%, σ=20%, T=1 → C ≈ 10.4506.
        assert!((atm_call().price() - 10.4506).abs() < 2e-4);
    }

    #[test]
    fn textbook_put_price() {
        assert!((atm_call().flipped().price() - 5.5735).abs() < 2e-4);
    }

    #[test]
    fn put_call_parity() {
        for strike in [60.0, 80.0, 100.0, 120.0, 150.0] {
            let call = OptionSpec {
                strike,
                ..atm_call()
            };
            let put = call.flipped();
            let lhs = call.price() - put.price();
            let rhs = call.spot - strike * (-call.rate * call.expiry).exp();
            assert!((lhs - rhs).abs() < 1e-6, "parity violated at K={strike}");
        }
    }

    #[test]
    fn deep_itm_call_approaches_forward_value() {
        let spec = OptionSpec {
            strike: 1.0,
            ..atm_call()
        };
        let intrinsic = spec.spot - spec.strike * (-spec.rate * spec.expiry).exp();
        assert!((spec.price() - intrinsic).abs() < 1e-6);
    }

    #[test]
    fn deep_otm_call_is_nearly_worthless() {
        let spec = OptionSpec {
            strike: 100_000.0,
            ..atm_call()
        };
        assert!(spec.price() < 1e-8);
    }

    #[test]
    fn price_increases_with_vol() {
        let mut prev = 0.0;
        for sigma in [0.05, 0.1, 0.2, 0.4, 0.8] {
            let p = OptionSpec {
                sigma,
                ..atm_call()
            }
            .price();
            assert!(p > prev, "vega positive: σ={sigma}");
            prev = p;
        }
    }

    #[test]
    fn greeks_reference_values() {
        // Same Hull example; standard published Greeks.
        let g = atm_call().greeks();
        assert!((g.delta - 0.6368).abs() < 1e-3, "delta={}", g.delta);
        assert!((g.gamma - 0.0188).abs() < 1e-3, "gamma={}", g.gamma);
        assert!((g.vega - 37.524).abs() < 0.05, "vega={}", g.vega);
        assert!((g.theta + 6.414).abs() < 0.01, "theta={}", g.theta);
        assert!((g.rho - 53.232).abs() < 0.05, "rho={}", g.rho);
    }

    #[test]
    fn put_delta_is_call_delta_minus_one() {
        let call = atm_call();
        let cd = call.greeks().delta;
        let pd = call.flipped().greeks().delta;
        assert!((cd - pd - 1.0).abs() < 1e-12);
    }

    #[test]
    fn delta_matches_finite_difference() {
        let spec = atm_call();
        let h = 1e-4;
        let up = OptionSpec {
            spot: spec.spot + h,
            ..spec
        }
        .price();
        let dn = OptionSpec {
            spot: spec.spot - h,
            ..spec
        }
        .price();
        let fd = (up - dn) / (2.0 * h);
        assert!((spec.greeks().delta - fd).abs() < 1e-5);
    }

    #[test]
    fn vega_matches_finite_difference() {
        let spec = atm_call();
        let h = 1e-5;
        let up = OptionSpec {
            sigma: spec.sigma + h,
            ..spec
        }
        .price();
        let dn = OptionSpec {
            sigma: spec.sigma - h,
            ..spec
        }
        .price();
        let fd = (up - dn) / (2.0 * h);
        assert!((spec.greeks().vega - fd).abs() < 1e-3);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let bad = OptionSpec {
            spot: -1.0,
            ..atm_call()
        };
        assert!(bad.validate().is_err());
        let bad = OptionSpec {
            sigma: 0.0,
            ..atm_call()
        };
        assert!(bad.validate().is_err());
        let bad = OptionSpec {
            expiry: f64::NAN,
            ..atm_call()
        };
        assert!(bad.validate().is_err());
        assert!(atm_call().validate().is_ok());
    }
}
