//! Fabric timing and capacity parameters.

use resex_simcore::time::SimDuration;
use serde::Serialize;

/// Tunable parameters of the simulated fabric.
///
/// Defaults follow the paper's testbed: a 10 Gbps InfiniBand link whose
/// 8b/10b encoding leaves 8 Gbps = 1 GiB/s of payload bandwidth, and a 1 KiB
/// MTU ("We assume a default MTU size of 1024 bytes"), giving the paper's
/// 1,048,576 MTUs per second of link capacity.
#[derive(Clone, Debug, Serialize)]
pub struct FabricConfig {
    /// Payload bandwidth of each node's egress link, bytes per second.
    pub link_bandwidth: u64,
    /// Maximum transmission unit in bytes; the chargeable I/O quantum.
    pub mtu_bytes: u32,
    /// Link-arbiter grant size in MTUs. The arbiter serves active queue
    /// pairs round-robin in grants of this many MTUs; 1 is exact per-packet
    /// round-robin, larger values trade arbitration fidelity for fewer
    /// simulation events (ablated in `resex-bench`).
    pub grant_mtus: u32,
    /// One-way latency through the crossbar switch.
    pub switch_latency: SimDuration,
    /// One-way cable propagation + receiver processing latency.
    pub wire_latency: SimDuration,
    /// Fixed HCA overhead from doorbell ring to first byte on the wire.
    pub wqe_overhead: SimDuration,
    /// Delay from last byte serialized to the sender-side completion
    /// (models the RC acknowledgement round-trip).
    pub ack_latency: SimDuration,
    /// Payloads at or below this size are byte-copied between guest
    /// memories; larger transfers are length-modeled only (their CQEs are
    /// still written for real). Keeps multi-megabyte interference streams
    /// cheap to simulate while control messages carry real data.
    pub payload_copy_threshold: u32,
    /// Relative standard deviation of per-grant hardware timing noise
    /// (PCIe/DMA arbitration, cache effects). 0 = fully deterministic
    /// (default). A few percent reproduces the broad latency smear real
    /// testbeds show in place of this model's clean bimodal split.
    pub hw_jitter: f64,
    /// Seed for the jitter stream (noise is still reproducible).
    pub jitter_seed: u64,
    /// Transport timeout before a lost/corrupted RC message is
    /// retransmitted (models the HCA's local-ACK timeout).
    pub retransmit_timeout: SimDuration,
    /// Transport retries before a lost RC message completes with
    /// [`WcStatus::RetryExceeded`](crate::WcStatus::RetryExceeded) and the
    /// QP enters `ERROR` (`ibv_qp_attr.retry_cnt`).
    pub retry_count: u32,
    /// Base RNR NAK backoff; attempt `n` waits `rnr_timer << (n-1)`.
    pub rnr_timer: SimDuration,
    /// RNR retries before the sender completes with `RnrRetryExceeded`
    /// and the QP enters `ERROR` (`ibv_qp_attr.rnr_retry`).
    pub rnr_retry_count: u32,
    /// Base delay before the connection manager's first reconnect attempt
    /// after a QP drops into `ERROR`; attempt `n` waits
    /// `reconnect_backoff << min(n, reconnect_max_shift)`.
    pub reconnect_backoff: SimDuration,
    /// Cap on the reconnect backoff exponent (bounds both the shift and
    /// the worst-case wait between attempts).
    pub reconnect_max_shift: u32,
}

// Hand-written so configs serialized before these knobs existed (or written
// by hand with a subset of fields) deserialize with the documented defaults:
// the vendored serde derive only supports bare `#[serde(default)]`, which
// would zero them.
impl serde::Deserialize for FabricConfig {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let m = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("FabricConfig: expected object"))?;
        let mut cfg = FabricConfig::default();
        fn field<T: serde::Deserialize>(
            m: &serde::Map,
            key: &str,
            slot: &mut T,
        ) -> Result<(), serde::Error> {
            if let Some(x) = m.get(key) {
                *slot = T::from_value(x)?;
            }
            Ok(())
        }
        field(m, "link_bandwidth", &mut cfg.link_bandwidth)?;
        field(m, "mtu_bytes", &mut cfg.mtu_bytes)?;
        field(m, "grant_mtus", &mut cfg.grant_mtus)?;
        field(m, "switch_latency", &mut cfg.switch_latency)?;
        field(m, "wire_latency", &mut cfg.wire_latency)?;
        field(m, "wqe_overhead", &mut cfg.wqe_overhead)?;
        field(m, "ack_latency", &mut cfg.ack_latency)?;
        field(m, "payload_copy_threshold", &mut cfg.payload_copy_threshold)?;
        field(m, "hw_jitter", &mut cfg.hw_jitter)?;
        field(m, "jitter_seed", &mut cfg.jitter_seed)?;
        field(m, "retransmit_timeout", &mut cfg.retransmit_timeout)?;
        field(m, "retry_count", &mut cfg.retry_count)?;
        field(m, "rnr_timer", &mut cfg.rnr_timer)?;
        field(m, "rnr_retry_count", &mut cfg.rnr_retry_count)?;
        field(m, "reconnect_backoff", &mut cfg.reconnect_backoff)?;
        field(m, "reconnect_max_shift", &mut cfg.reconnect_max_shift)?;
        Ok(cfg)
    }
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            // 8 Gbps effective = 1 GiB/s as the paper computes it.
            link_bandwidth: 1024 * 1024 * 1024,
            mtu_bytes: 1024,
            grant_mtus: 16,
            switch_latency: SimDuration::from_nanos(300),
            wire_latency: SimDuration::from_nanos(300),
            wqe_overhead: SimDuration::from_nanos(500),
            ack_latency: SimDuration::from_nanos(1200),
            payload_copy_threshold: 4096,
            hw_jitter: 0.0,
            jitter_seed: 0x1B_CAFE,
            retransmit_timeout: SimDuration::from_micros(50),
            retry_count: 7,
            rnr_timer: SimDuration::from_micros(10),
            rnr_retry_count: 7,
            reconnect_backoff: SimDuration::from_micros(100),
            reconnect_max_shift: 8,
        }
    }
}

impl FabricConfig {
    /// Time to serialize `bytes` onto the link.
    pub fn serialization_time(&self, bytes: u64) -> SimDuration {
        // Integer arithmetic: ns = bytes * 1e9 / bw, computed in u128 to
        // avoid overflow for multi-gigabyte transfers.
        let ns = (bytes as u128 * 1_000_000_000u128) / self.link_bandwidth as u128;
        SimDuration::from_nanos(ns as u64)
    }

    /// Number of MTUs needed to carry `bytes` (at least 1 for any message).
    pub fn mtus_for(&self, bytes: u32) -> u32 {
        bytes.div_ceil(self.mtu_bytes).max(1)
    }

    /// Link capacity in MTUs per second — the paper's aggregate I/O supply.
    pub fn mtus_per_second(&self) -> u64 {
        self.link_bandwidth / self.mtu_bytes as u64
    }

    /// One-way latency from sender NIC to receiver NIC, excluding
    /// serialization.
    pub fn one_way_latency(&self) -> SimDuration {
        self.switch_latency + self.wire_latency
    }

    /// Validates internal consistency; called by the fabric constructor.
    pub fn validate(&self) -> Result<(), String> {
        if self.link_bandwidth == 0 {
            return Err("link_bandwidth must be positive".into());
        }
        if self.mtu_bytes == 0 || !self.mtu_bytes.is_power_of_two() {
            return Err(format!(
                "mtu_bytes must be a power of two, got {}",
                self.mtu_bytes
            ));
        }
        if self.grant_mtus == 0 {
            return Err("grant_mtus must be at least 1".into());
        }
        if !(0.0..1.0).contains(&self.hw_jitter) {
            return Err(format!(
                "hw_jitter must be in [0, 1), got {}",
                self.hw_jitter
            ));
        }
        if self.retransmit_timeout == SimDuration::ZERO {
            return Err("retransmit_timeout must be positive".into());
        }
        if self.rnr_timer == SimDuration::ZERO {
            return Err("rnr_timer must be positive".into());
        }
        if self.reconnect_backoff == SimDuration::ZERO {
            return Err("reconnect_backoff must be positive".into());
        }
        if self.reconnect_max_shift >= 63 {
            return Err(format!(
                "reconnect_max_shift must be below 63, got {}",
                self.reconnect_max_shift
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_numbers() {
        let c = FabricConfig::default();
        assert_eq!(
            c.mtus_per_second(),
            1_048_576,
            "paper: 1,048,576 MTUs/epoch"
        );
        assert!(c.validate().is_ok());
    }

    #[test]
    fn serialization_time_scales() {
        let c = FabricConfig::default();
        let t1 = c.serialization_time(1024);
        let t64 = c.serialization_time(64 * 1024);
        // Each computed independently (integer ns), so allow truncation slack.
        assert!((t64.as_nanos() as i64 - t1.as_nanos() as i64 * 64).unsigned_abs() <= 64);
        // 64 KiB at 1 GiB/s ≈ 61 µs.
        assert!((t64.as_micros_f64() - 61.0).abs() < 1.0, "{t64}");
        assert_eq!(c.serialization_time(0), SimDuration::ZERO);
    }

    #[test]
    fn mtus_for_rounds_up() {
        let c = FabricConfig::default();
        assert_eq!(c.mtus_for(0), 1, "even a 0-byte message occupies a packet");
        assert_eq!(c.mtus_for(1), 1);
        assert_eq!(c.mtus_for(1024), 1);
        assert_eq!(c.mtus_for(1025), 2);
        assert_eq!(c.mtus_for(2 * 1024 * 1024), 2048);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let c = FabricConfig {
            mtu_bytes: 1000,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = FabricConfig {
            grant_mtus: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = FabricConfig {
            link_bandwidth: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = FabricConfig {
            hw_jitter: 1.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = FabricConfig {
            hw_jitter: 0.05,
            ..Default::default()
        };
        assert!(c.validate().is_ok());
        let c = FabricConfig {
            retransmit_timeout: SimDuration::ZERO,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = FabricConfig {
            rnr_timer: SimDuration::ZERO,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn partial_configs_deserialize_with_defaults() {
        // A config written before the retransmission knobs existed must come
        // back with the documented defaults, not zeros.
        let v: serde::Value = serde::Serialize::to_value(&42u64);
        let mut m = serde::Map::new();
        m.insert("jitter_seed".to_string(), v);
        let cfg = <FabricConfig as serde::Deserialize>::from_value(&serde::Value::Object(m))
            .expect("partial config");
        assert_eq!(cfg.jitter_seed, 42);
        assert_eq!(cfg.retry_count, FabricConfig::default().retry_count);
        assert_eq!(
            cfg.retransmit_timeout,
            FabricConfig::default().retransmit_timeout
        );
        assert_eq!(
            cfg.reconnect_backoff,
            FabricConfig::default().reconnect_backoff
        );
        assert_eq!(
            cfg.reconnect_max_shift,
            FabricConfig::default().reconnect_max_shift
        );
        assert!(cfg.validate().is_ok());
    }
}
