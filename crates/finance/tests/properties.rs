//! Property-based tests for the pricing library's mathematical invariants.

use proptest::prelude::*;
use resex_finance::{crr_price, implied_vol, Exercise, OptionKind, OptionSpec};

fn arb_spec() -> impl Strategy<Value = OptionSpec> {
    (
        prop_oneof![Just(OptionKind::Call), Just(OptionKind::Put)],
        10.0f64..500.0, // spot
        10.0f64..500.0, // strike
        -0.02f64..0.12, // rate
        0.05f64..1.2,   // sigma
        0.05f64..3.0,   // expiry
    )
        .prop_map(|(kind, spot, strike, rate, sigma, expiry)| OptionSpec {
            kind,
            spot,
            strike,
            rate,
            sigma,
            expiry,
        })
}

proptest! {
    /// Put–call parity holds for all valid inputs:
    /// `C − P = S − K·e^{−rT}`.
    #[test]
    fn put_call_parity(spec in arb_spec()) {
        let call = OptionSpec { kind: OptionKind::Call, ..spec };
        let put = call.flipped();
        let lhs = call.price() - put.price();
        let rhs = spec.spot - spec.strike * (-spec.rate * spec.expiry).exp();
        prop_assert!((lhs - rhs).abs() < 1e-4 * (1.0 + rhs.abs()), "lhs={lhs} rhs={rhs}");
    }

    /// Prices respect static no-arbitrage bounds.
    #[test]
    fn no_arbitrage_bounds(spec in arb_spec()) {
        let p = spec.price();
        let df = (-spec.rate * spec.expiry).exp();
        prop_assert!(p >= -1e-9, "negative price {p}");
        match spec.kind {
            OptionKind::Call => {
                prop_assert!(p <= spec.spot + 1e-9);
                prop_assert!(p >= (spec.spot - spec.strike * df).max(0.0) - 1e-6);
            }
            OptionKind::Put => {
                prop_assert!(p <= spec.strike * df + 1e-9);
                prop_assert!(p >= (spec.strike * df - spec.spot).max(0.0) - 1e-6);
            }
        }
    }

    /// Vega is positive: price strictly increases with volatility.
    #[test]
    fn price_monotone_in_vol(spec in arb_spec(), bump in 0.01f64..0.5) {
        let p0 = spec.price();
        let p1 = OptionSpec { sigma: spec.sigma + bump, ..spec }.price();
        prop_assert!(p1 >= p0 - 1e-9, "vol {:.3}→{:.3}: {p0} → {p1}", spec.sigma, spec.sigma + bump);
    }

    /// Call prices decrease with strike; put prices increase.
    #[test]
    fn price_monotone_in_strike(spec in arb_spec(), bump in 1.0f64..100.0) {
        let p0 = spec.price();
        let p1 = OptionSpec { strike: spec.strike + bump, ..spec }.price();
        match spec.kind {
            OptionKind::Call => prop_assert!(p1 <= p0 + 1e-9),
            OptionKind::Put => prop_assert!(p1 >= p0 - 1e-9),
        }
    }

    /// Delta is bounded: calls in [0,1], puts in [-1,0]; gamma and vega
    /// are non-negative.
    #[test]
    fn greeks_bounds(spec in arb_spec()) {
        let g = spec.greeks();
        match spec.kind {
            OptionKind::Call => prop_assert!((0.0..=1.0).contains(&g.delta)),
            OptionKind::Put => prop_assert!((-1.0..=0.0).contains(&g.delta)),
        }
        prop_assert!(g.gamma >= 0.0);
        prop_assert!(g.vega >= 0.0);
    }

    /// Implied vol inverts the pricer: price at recovered vol matches.
    #[test]
    fn implied_vol_roundtrip(spec in arb_spec()) {
        let price = spec.price();
        // Skip numerically degenerate deep-OTM cases (price ≈ 0, vega ≈ 0).
        prop_assume!(price > 1e-4);
        let iv = implied_vol(&spec, price).unwrap();
        let repriced = OptionSpec { sigma: iv, ..spec }.price();
        prop_assert!((repriced - price).abs() < 1e-6, "sigma={} iv={iv}", spec.sigma);
    }

    /// American options are never worth less than European ones, and
    /// both CRR prices are non-negative.
    #[test]
    fn american_dominates_european(spec in arb_spec()) {
        let eu = crr_price(&spec, 64, Exercise::European);
        let am = crr_price(&spec, 64, Exercise::American);
        prop_assert!(eu >= -1e-9);
        prop_assert!(am >= eu - 1e-9, "eu={eu} am={am}");
    }

    /// The CRR European price converges toward Black–Scholes.
    #[test]
    fn crr_converges_to_bs(spec in arb_spec()) {
        let bs = spec.price();
        let crr = crr_price(&spec, 512, Exercise::European);
        // Convergence is O(1/n) with an oscillating term; 512 steps is
        // comfortably within 2% + small absolute slack.
        prop_assert!((crr - bs).abs() < 0.02 * (1.0 + bs), "bs={bs} crr={crr}");
    }
}
