//! Property-based tests for BenchEx wire formats and state machines.

use proptest::prelude::*;
use resex_benchex::{
    Client, ClientAction, ClientMode, Server, ServerConfig, TraceGen, TraceProfile,
    TransactionRequest, TransactionResponse,
};
use resex_finance::{PricingTask, TaskKind};
use resex_simcore::time::{SimDuration, SimTime};

fn arb_task() -> impl Strategy<Value = PricingTask> {
    (
        prop_oneof![
            Just(TaskKind::Quote),
            Just(TaskKind::Risk),
            (1u32..256).prop_map(|steps| TaskKind::Reprice { steps }),
            Just(TaskKind::ImpliedVol),
        ],
        1u32..1000,
        any::<u64>(),
    )
        .prop_map(|(kind, n_options, seed)| PricingTask {
            kind,
            n_options,
            seed,
        })
}

proptest! {
    /// Requests survive the wire round-trip for arbitrary contents.
    #[test]
    fn request_roundtrip(id in any::<u64>(), client in any::<u32>(), at in any::<u64>(), task in arb_task()) {
        let req = TransactionRequest {
            id,
            client_id: client,
            sent_at: SimTime::from_nanos(at),
            task,
        };
        prop_assert_eq!(TransactionRequest::decode(&req.encode()), Some(req));
    }

    /// Responses survive the wire round-trip, with arbitrary padding.
    #[test]
    fn response_roundtrip(id in any::<u64>(), at in any::<u64>(), v in any::<f64>(), svc in any::<u64>(), pad in 0usize..8192) {
        prop_assume!(!v.is_nan());
        let resp = TransactionResponse {
            id,
            sent_at: SimTime::from_nanos(at),
            value_sum: v,
            service_ns: svc,
        };
        let mut wire = resp.encode();
        wire.resize(wire.len() + pad, 0);
        prop_assert_eq!(TransactionResponse::decode(&wire), Some(resp));
    }

    /// The server preserves FCFS order and conserves requests for any
    /// arrival pattern: everything that arrives is eventually served, in
    /// order, and the latency decomposition is internally consistent.
    #[test]
    fn server_fcfs_conservation(arrival_gaps in prop::collection::vec(1u64..500, 1..60)) {
        let mut server = Server::new(ServerConfig {
            execute_tasks: false,
            ..ServerConfig::default()
        });
        let mut t = SimTime::ZERO;
        let mut pending: Option<u64> = None; // request id in service
        let mut served_order = Vec::new();
        let mut next_id = 0u64;
        let drive = |server: &mut Server, act, t: &mut SimTime, served: &mut Vec<u64>, pending: &mut Option<u64>| {
            // Execute the action synchronously with fixed stage delays.
            let mut act = act;
            loop {
                match act {
                    resex_benchex::ServerAction::StartCompute { .. } => {
                        *t += SimDuration::from_micros(100);
                        act = server.on_compute_done(*t);
                    }
                    resex_benchex::ServerAction::PostResponse { request_id, .. } => {
                        *pending = Some(request_id);
                        *t += SimDuration::from_micros(64);
                        let (rec, next) = server.on_send_complete_with_record(*t);
                        prop_assert_eq!(rec.request_id, pending.take().unwrap());
                        served.push(rec.request_id);
                        act = next;
                    }
                    resex_benchex::ServerAction::Idle => break,
                }
            }
            Ok(())
        };
        for gap in &arrival_gaps {
            t += SimDuration::from_micros(*gap);
            let req = TransactionRequest {
                id: next_id,
                client_id: 0,
                sent_at: t,
                task: PricingTask { kind: TaskKind::Quote, n_options: 8, seed: 0 },
            };
            next_id += 1;
            let act = server.on_request(req, t);
            drive(&mut server, act, &mut t, &mut served_order, &mut pending)?;
        }
        prop_assert_eq!(server.served(), arrival_gaps.len() as u64);
        let expect: Vec<u64> = (0..arrival_gaps.len() as u64).collect();
        prop_assert_eq!(served_order, expect, "FCFS violated");
        // Every record's total equals the sum of its components.
        for r in server.window.since(SimTime::ZERO) {
            prop_assert_eq!(r.total(), r.ptime + r.ctime + r.wtime);
        }
    }

    /// Closed-loop clients keep at most one request outstanding, always.
    #[test]
    fn closed_loop_one_outstanding(responses in prop::collection::vec(1u64..1000, 1..50)) {
        let trace = TraceGen::new(TraceProfile::uniform_quotes(8), 1);
        let mut c = Client::new(0, ClientMode::ClosedLoop { think: SimDuration::ZERO }, trace, 2);
        let mut t = SimTime::ZERO;
        let mut act = c.start(t);
        for gap in &responses {
            let req = match act {
                ClientAction::Send(r) => r,
                other => return Err(TestCaseError::fail(format!("expected send, got {other:?}"))),
            };
            prop_assert_eq!(c.outstanding(), 1);
            t += SimDuration::from_micros(*gap);
            act = c.on_response(req.sent_at, t);
        }
        prop_assert_eq!(c.received(), responses.len() as u64);
    }

    /// Trace generators with the same profile and seed agree; different
    /// seeds diverge quickly.
    #[test]
    fn trace_determinism(seed in any::<u64>()) {
        let mut a = TraceGen::new(TraceProfile::default(), seed);
        let mut b = TraceGen::new(TraceProfile::default(), seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_task(), b.next_task());
        }
        let mut c = TraceGen::new(TraceProfile::default(), seed.wrapping_add(1));
        let diverges = (0..50).any(|_| a.next_task() != c.next_task());
        prop_assert!(diverges);
    }
}
