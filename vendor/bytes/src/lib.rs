//! Vendored offline stub of `bytes`: the `Buf`/`BufMut` read/write cursors
//! and a `Vec<u8>`-backed `BytesMut`, covering exactly the little-endian
//! accessors this workspace's wire formats use.

use std::ops::{Deref, DerefMut};

/// Read cursor over a byte source. Implemented for `&[u8]`, which advances
/// the slice itself as values are consumed (as upstream does).
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian u16.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian u32.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian f64.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian u16.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian f64.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }

    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.resize(self.len() + cnt, val);
    }
}

/// Write cursor over a fixed-size buffer: each write fills the front and
/// advances the slice, exactly like the real `bytes` crate. Panics when the
/// buffer runs out of room, matching upstream semantics.
impl BufMut for &mut [u8] {
    fn put_slice(&mut self, src: &[u8]) {
        let (head, tail) = std::mem::take(self).split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

/// Growable byte buffer (a thin wrapper over `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Resizes, filling new space with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.buf
    }
}
