//! The fabric engine: HCAs, the switch, and the data-path state machine.
//!
//! [`Fabric`] owns every node's HCA state (TPT, queue pairs, completion
//! queues, UARs, egress arbiter) plus an internal event agenda. The platform
//! drives it with two calls:
//!
//! * [`Fabric::next_time`] — when does the fabric need attention next?
//! * [`Fabric::advance`] — process everything due up to `now`, returning the
//!   externally visible [`FabricEvent`]s (completions, deliveries, drops).
//!
//! The data path of one work request:
//!
//! ```text
//! post_send ─→ doorbell ─→ egress arbiter ─(grants)─→ serialization
//!        ─(switch+wire)─→ delivery at destination ─→ receiver effects
//!        ─(ack)─→ sender completion CQE
//! ```
//!
//! Completions are *really written* into guest-memory CQE rings — the same
//! bytes IBMon later introspects.

use crate::config::FabricConfig;
use crate::cqe::{CompletionQueue, Cqe, CQE_SIZE};
use crate::error::FabricError;
use crate::link::{EgressJob, FlowParams, GrantDecision, GrantPlan, JobKind, LinkArbiter};
use crate::mr::{MrHandle, Need, Tpt};
use crate::qp::{QpState, QueuePair, RecvRequest, WorkRequest};
use crate::types::{Access, CqNum, McGroupId, NodeId, Opcode, PdId, QpNum, QpType, WcStatus};
use crate::uar::Uar;
use resex_faults::{FabricFaults, FaultSchedule, FaultStats};
use resex_obs::{subsystem, Scope, Tracer};
use resex_simcore::event::{EventKey, EventQueue};
use resex_simcore::ids::IdAllocator;
use resex_simcore::rng::SimRng;
use resex_simcore::time::{SimDuration, SimTime};
use resex_simmem::{Gpa, MemoryHandle, PAGE_SIZE};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

resex_simcore::define_id!(
    /// One UAR (doorbell) page on an HCA.
    UarId
);

/// Wire size of the request packet that initiates an RDMA read.
const READ_REQUEST_BYTES: u32 = 16;

/// Cap on every exponential-backoff shift (RNR NAK waits and connection-
/// manager reconnect waits): `base << shift` is computed in `u64`, so the
/// exponent must stay far away from 64, and a bounded shift also keeps the
/// worst-case wait finite no matter how many consecutive NAKs or failed
/// reconnect probes pile up.
pub const MAX_BACKOFF_SHIFT: u32 = 16;

/// Per-node (per-HCA) aggregate counters.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct NodeCounters {
    /// Payload bytes serialized onto the egress link.
    pub bytes_sent: u64,
    /// MTUs serialized onto the egress link.
    pub mtus_sent: u64,
    /// Arbiter grants issued.
    pub grants: u64,
    /// Cumulative link-busy time (for utilization).
    pub busy: SimDuration,
    /// Incoming messages dropped for lack of a posted receive (counted only
    /// when the RNR retry budget is exhausted).
    pub rnr_drops: u64,
    /// Unreliable datagrams silently dropped (not-ready receiver).
    pub ud_drops: u64,
    /// Messages lost on the wire (fault injection).
    #[serde(default)]
    pub wire_lost: u64,
    /// Messages delivered corrupted and NAKed by the receiver (fault
    /// injection; retransmitted like losses on RC).
    #[serde(default)]
    pub wire_corrupted: u64,
    /// Messages re-serialized after a wire loss/corruption.
    #[serde(default)]
    pub retransmits: u64,
}

/// Externally visible fabric happenings, timestamped by [`Fabric::advance`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FabricEvent {
    /// A sender-side completion CQE was written.
    SendComplete {
        /// Node owning the sending QP.
        node: NodeId,
        /// The sending queue pair.
        qp: QpNum,
        /// The work request's cookie.
        wr_id: u64,
        /// The completed operation.
        opcode: Opcode,
        /// Completion status.
        status: WcStatus,
        /// Message length.
        byte_len: u32,
    },
    /// A receive-side completion CQE was written (Send or WriteImm arrival).
    RecvComplete {
        /// Node owning the receiving QP.
        node: NodeId,
        /// The receiving queue pair.
        qp: QpNum,
        /// The receive request's cookie.
        wr_id: u64,
        /// Message length.
        byte_len: u32,
        /// Immediate value, for `RdmaWriteImm`.
        imm: Option<u32>,
    },
    /// A plain RDMA write landed (no CQE; the destination CPU is not
    /// notified on real hardware — the platform uses this to model apps
    /// that poll memory).
    RdmaWriteDelivered {
        /// Destination node.
        node: NodeId,
        /// Destination queue pair.
        qp: QpNum,
        /// Where the data landed.
        gpa: Gpa,
        /// Bytes written.
        byte_len: u32,
    },
    /// An incoming send found no posted receive and was dropped.
    RnrDrop {
        /// Destination node.
        node: NodeId,
        /// Destination queue pair.
        qp: QpNum,
    },
    /// The connection manager cycled an errored QP back to `RTS` and
    /// replayed its journaled send WQEs.
    QpReconnected {
        /// Node owning the recovered QP.
        node: NodeId,
        /// The recovered queue pair.
        qp: QpNum,
        /// Journaled send WQEs replayed onto the link.
        replayed: u64,
    },
}

enum Timer {
    GrantDone {
        node: NodeId,
        plan: GrantPlan,
    },
    LinkRetry {
        node: NodeId,
    },
    Deliver {
        job: EgressJob,
    },
    SenderComplete {
        node: NodeId,
        qp: QpNum,
        wr_id: u64,
        opcode: Opcode,
        byte_len: u32,
    },
    /// Re-enqueue a message after a wire loss or RNR NAK backoff.
    Retransmit {
        job: EgressJob,
    },
    /// Connection-manager reconnect attempt for a broken QP.
    Reconnect {
        node: NodeId,
        qp: QpNum,
    },
    /// End of a batched multi-grant transfer: every serialization step
    /// since the batch opened is replayed at its historical time.
    BatchDone {
        node: NodeId,
    },
}

/// An in-flight batched transfer on one egress link: chunk 0 has been
/// granted (its plan is held here, its completion effects not yet applied)
/// and the remaining serialization steps of the same job are represented by
/// a single `BatchDone` event at the batch's end instead of one `GrantDone`
/// per chunk. Any interim operation that could observe or perturb link
/// state settles the batch first (`settle_node`), so observable state never
/// diverges from the chunk-at-a-time path.
struct LinkBatch {
    /// Grant plan of the batch's first chunk (effects still pending).
    plan0: GrantPlan,
    /// When the first chunk started serializing.
    start: SimTime,
    /// Serialization time of the first chunk (incl. WQE overhead if any).
    dur0: SimDuration,
    /// Serialization time of a full-size (grant_bytes) chunk.
    ser: SimDuration,
    /// When the final chunk finishes (the `BatchDone` time).
    fire_end: SimTime,
    /// The chunk boundary before `fire_end` — the moment the
    /// chunk-at-a-time execution would have scheduled the final
    /// completion event (its "arming" time for ordering purposes).
    prev_end: SimTime,
    /// The pending `BatchDone` event, cancelled when settling early.
    timer: EventKey,
}

/// Connection-manager bookkeeping for one broken QP: everything needed to
/// bring the connection back and resume where it left off.
struct CmEntry {
    /// Unacked send WQEs captured when the QP broke (the failing message
    /// first, then the arbiter backlog in queue order), replayed after the
    /// reconnect.
    journal: Vec<EgressJob>,
    /// Posted receives captured at break time, re-posted on reconnect.
    recvs: Vec<RecvRequest>,
    /// Reconnect attempts so far (drives the exponential backoff).
    attempt: u32,
    /// When the QP dropped into `ERROR`, for downtime metrics.
    broken_at: SimTime,
}

/// Outcome of the per-message wire-fault draw.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WireFault {
    /// The message vanished on the wire (no NAK reaches the sender until
    /// its transport timeout).
    Lost,
    /// The message arrived but failed the receiver's ICRC check; on RC the
    /// NAK triggers the same retransmission path as a loss.
    Corrupted,
}

struct Node {
    tpt: Tpt,
    qps: HashMap<QpNum, QueuePair>,
    cqs: HashMap<CqNum, CompletionQueue>,
    pds: HashSet<PdId>,
    uars: HashMap<UarId, Uar>,
    qp_uar: HashMap<QpNum, UarId>,
    qp_alloc: IdAllocator<QpNum>,
    cq_alloc: IdAllocator<CqNum>,
    pd_alloc: IdAllocator<PdId>,
    uar_alloc: IdAllocator<UarId>,
    arbiter: LinkArbiter,
    link_busy: bool,
    /// Pending batched transfer on this node's egress link, if any.
    batch: Option<LinkBatch>,
    /// Pending rate-limit retry, if one is scheduled.
    next_retry: Option<SimTime>,
    /// Virtual-clock cursor of the node's *ingress* port: the instant the
    /// last-accepted chunk finished arriving. Models switch output-port
    /// contention (incast) without penalizing uncongested cut-through
    /// traffic.
    ingress_free: SimTime,
    counters: NodeCounters,
}

impl Node {
    fn new() -> Self {
        Node {
            tpt: Tpt::new(),
            qps: HashMap::new(),
            cqs: HashMap::new(),
            pds: HashSet::new(),
            uars: HashMap::new(),
            qp_uar: HashMap::new(),
            // QP numbers start at 1 like real HCAs (0 is reserved).
            qp_alloc: IdAllocator::starting_at(1),
            cq_alloc: IdAllocator::new(),
            pd_alloc: IdAllocator::new(),
            uar_alloc: IdAllocator::new(),
            arbiter: LinkArbiter::new(),
            link_busy: false,
            batch: None,
            next_retry: None,
            ingress_free: SimTime::ZERO,
            counters: NodeCounters::default(),
        }
    }
}

/// The simulated fabric: all HCAs plus the crossbar switch between them.
pub struct Fabric {
    cfg: FabricConfig,
    nodes: Vec<Node>,
    agenda: EventQueue<Timer>,
    outputs: Vec<(SimTime, FabricEvent)>,
    job_seq: u64,
    jitter_rng: SimRng,
    mcast_groups: Vec<Vec<(NodeId, QpNum)>>,
    tracer: Tracer,
    /// Wire/grant fault injectors; `None` (the default) draws nothing and
    /// keeps fault-free runs byte-identical to pre-fault builds.
    faults: Option<FabricFaults>,
    /// Connection manager armed? Off (the default) preserves the legacy
    /// flush-and-stay-broken semantics; on, errored QPs are journaled and
    /// reconnected. See [`Fabric::enable_recovery`].
    recovery: bool,
    /// Per-broken-QP connection-manager state, keyed by `(node, qp)`.
    /// Never iterated (only keyed access), so the map's order cannot leak
    /// into simulation order.
    cm: HashMap<(NodeId, QpNum), CmEntry>,
    /// Internal inconsistencies caught by the event loop instead of
    /// panicking (timer references to destroyed state and the like).
    internal_errors: Vec<(SimTime, FabricError)>,
    /// Recycled payload buffers for the copy-under-threshold path: posting
    /// a small message pops a buffer here instead of allocating, and the
    /// receive side pushes it back once the bytes have landed.
    payload_pool: Vec<Vec<u8>>,
}

/// Upper bound on pooled payload buffers (each at most
/// `payload_copy_threshold` bytes of capacity).
const PAYLOAD_POOL_CAP: usize = 64;

impl Fabric {
    /// Creates a fabric with the given configuration.
    pub fn new(cfg: FabricConfig) -> Result<Self, FabricError> {
        cfg.validate().map_err(FabricError::Config)?;
        let jitter_rng = SimRng::seed_from_u64(cfg.jitter_seed);
        Ok(Fabric {
            cfg,
            nodes: Vec::new(),
            agenda: EventQueue::new(),
            outputs: Vec::new(),
            job_seq: 0,
            jitter_rng,
            mcast_groups: Vec::new(),
            tracer: Tracer::disabled(),
            faults: None,
            recovery: false,
            cm: HashMap::new(),
            internal_errors: Vec::new(),
            payload_pool: Vec::new(),
        })
    }

    /// Pops a pooled payload buffer resized (zero-filled) to `len` bytes.
    fn pool_buf(&mut self, len: usize) -> Vec<u8> {
        let mut buf = self.payload_pool.pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Returns a consumed payload buffer to the pool (capacity kept).
    fn recycle_payload(&mut self, buf: Option<Vec<u8>>) {
        if let Some(mut b) = buf {
            if self.payload_pool.len() < PAYLOAD_POOL_CAP {
                b.clear();
                self.payload_pool.push(b);
            }
        }
    }

    /// Creates a fabric with default (paper-testbed) parameters.
    pub fn with_defaults() -> Self {
        Fabric::new(FabricConfig::default()).expect("default config is valid")
    }

    /// The active configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.cfg
    }

    /// Installs an observability tracer. Timing and behaviour are
    /// unaffected; the fabric only *emits* through it.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Installs wire/grant fault injection. A schedule with no enabled
    /// fault class is ignored, so passing a default schedule is exactly
    /// equivalent to never calling this.
    pub fn install_faults(&mut self, schedule: FaultSchedule) {
        if schedule.enabled() {
            self.faults = Some(FabricFaults::new(schedule));
        }
    }

    /// Tally of faults injected into this fabric so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Arms the connection manager. With recovery on, a QP that exhausts
    /// its transport or RNR retry budget no longer flushes `WrFlushError`
    /// completions and stays broken: its unacked send WQEs and posted
    /// receives are journaled, the QP transitions `Connected → Broken →
    /// Reconnecting` on an exponential-backoff timer
    /// (`reconnect_backoff << min(attempt, reconnect_max_shift)`), and
    /// once the link is back up the CM cycles RESET→INIT→RTR→RTS and
    /// replays the journal — so no completion is ever surfaced for a
    /// journaled WQE. An *injected* ERROR via [`Fabric::set_qp_error`]
    /// still flushes (the CQEs are already drained by then) but is also
    /// scheduled for reconnect. Recovery only changes behaviour on paths
    /// that faults create, so arming it on a fault-free run costs nothing
    /// and keeps outputs byte-identical.
    pub fn enable_recovery(&mut self) {
        self.recovery = true;
    }

    /// True if [`Fabric::enable_recovery`] was called.
    pub fn recovery_enabled(&self) -> bool {
        self.recovery
    }

    /// Number of QPs currently broken and awaiting reconnection.
    pub fn broken_qp_count(&self) -> usize {
        self.cm.len()
    }

    /// Internal inconsistencies caught (not panicked) by the event loop,
    /// draining the log. Healthy runs return an empty vector.
    pub fn take_internal_errors(&mut self) -> Vec<(SimTime, FabricError)> {
        std::mem::take(&mut self.internal_errors)
    }

    /// Number of internal inconsistencies caught so far (non-draining).
    pub fn internal_error_count(&self) -> usize {
        self.internal_errors.len()
    }

    /// Adds a node (HCA + switch port) and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.nodes.push(Node::new());
        NodeId::new((self.nodes.len() - 1) as u32)
    }

    fn node(&self, n: NodeId) -> Result<&Node, FabricError> {
        self.nodes.get(n.index()).ok_or(FabricError::UnknownNode(n))
    }

    fn node_mut(&mut self, n: NodeId) -> Result<&mut Node, FabricError> {
        self.nodes
            .get_mut(n.index())
            .ok_or(FabricError::UnknownNode(n))
    }

    // ----- control path (verbs) ---------------------------------------

    /// Allocates a protection domain.
    pub fn create_pd(&mut self, node: NodeId) -> Result<PdId, FabricError> {
        let n = self.node_mut(node)?;
        let pd = n.pd_alloc.next();
        n.pds.insert(pd);
        Ok(pd)
    }

    /// Allocates a UAR (doorbell page) inside `mem`.
    pub fn create_uar(&mut self, node: NodeId, mem: &MemoryHandle) -> Result<UarId, FabricError> {
        let base = mem.alloc_bytes(PAGE_SIZE as u64)?;
        let uar = Uar::new(mem.clone(), base)?;
        let n = self.node_mut(node)?;
        let id = n.uar_alloc.next();
        n.uars.insert(id, uar);
        Ok(id)
    }

    /// Registers a memory region, pinning its pages.
    pub fn register_mr(
        &mut self,
        node: NodeId,
        pd: PdId,
        mem: &MemoryHandle,
        gpa: Gpa,
        len: u32,
        access: Access,
    ) -> Result<MrHandle, FabricError> {
        let n = self.node_mut(node)?;
        if !n.pds.contains(&pd) {
            return Err(FabricError::UnknownPd(node, pd));
        }
        n.tpt.register(pd, mem, gpa, len, access)
    }

    /// Deregisters a memory region.
    pub fn deregister_mr(&mut self, node: NodeId, key: u32) -> Result<(), FabricError> {
        self.node_mut(node)?.tpt.deregister(key)
    }

    /// Creates a completion queue whose ring is allocated inside `mem`.
    pub fn create_cq(
        &mut self,
        node: NodeId,
        mem: &MemoryHandle,
        capacity: u32,
    ) -> Result<CqNum, FabricError> {
        let ring_gpa = mem.alloc_bytes((capacity as usize * CQE_SIZE) as u64)?;
        let n = self.node_mut(node)?;
        let num = n.cq_alloc.next();
        let cq = CompletionQueue::new(num, mem.clone(), ring_gpa, capacity)?;
        n.cqs.insert(num, cq);
        Ok(num)
    }

    /// Creates a queue pair bound to the given CQs and UAR.
    #[allow(clippy::too_many_arguments)] // mirrors ibv_create_qp's surface
    pub fn create_qp(
        &mut self,
        node: NodeId,
        pd: PdId,
        send_cq: CqNum,
        recv_cq: CqNum,
        sq_depth: usize,
        rq_depth: usize,
        uar: UarId,
    ) -> Result<QpNum, FabricError> {
        let n = self.node_mut(node)?;
        if !n.pds.contains(&pd) {
            return Err(FabricError::UnknownPd(node, pd));
        }
        if !n.cqs.contains_key(&send_cq) {
            return Err(FabricError::UnknownCq(node, send_cq));
        }
        if !n.cqs.contains_key(&recv_cq) {
            return Err(FabricError::UnknownCq(node, recv_cq));
        }
        let num = n.qp_alloc.next();
        let u = n
            .uars
            .get_mut(&uar)
            .ok_or_else(|| FabricError::Config("unknown UAR".into()))?;
        u.assign(num)?;
        n.qp_uar.insert(num, uar);
        n.qps.insert(
            num,
            QueuePair::new(num, pd, send_cq, recv_cq, sq_depth, rq_depth),
        );
        Ok(num)
    }

    /// Connects two queue pairs (both walked `INIT → RTR → RTS`).
    pub fn connect(
        &mut self,
        a_node: NodeId,
        a_qp: QpNum,
        b_node: NodeId,
        b_qp: QpNum,
    ) -> Result<(), FabricError> {
        {
            let n = self.node_mut(a_node)?;
            let qp = n
                .qps
                .get_mut(&a_qp)
                .ok_or(FabricError::UnknownQp(a_node, a_qp))?;
            qp.to_init()?;
            qp.to_rtr((b_node, b_qp))?;
            qp.to_rts()?;
        }
        {
            let n = self.node_mut(b_node)?;
            let qp = n
                .qps
                .get_mut(&b_qp)
                .ok_or(FabricError::UnknownQp(b_node, b_qp))?;
            qp.to_init()?;
            qp.to_rtr((a_node, a_qp))?;
            qp.to_rts()?;
        }
        Ok(())
    }

    /// Creates an unreliable-datagram queue pair (already in RTS; UD needs
    /// no peer handshake).
    #[allow(clippy::too_many_arguments)] // mirrors ibv_create_qp's surface
    pub fn create_ud_qp(
        &mut self,
        node: NodeId,
        pd: PdId,
        send_cq: CqNum,
        recv_cq: CqNum,
        sq_depth: usize,
        rq_depth: usize,
        uar: UarId,
    ) -> Result<QpNum, FabricError> {
        let n = self.node_mut(node)?;
        if !n.pds.contains(&pd) {
            return Err(FabricError::UnknownPd(node, pd));
        }
        if !n.cqs.contains_key(&send_cq) {
            return Err(FabricError::UnknownCq(node, send_cq));
        }
        if !n.cqs.contains_key(&recv_cq) {
            return Err(FabricError::UnknownCq(node, recv_cq));
        }
        let num = n.qp_alloc.next();
        let u = n
            .uars
            .get_mut(&uar)
            .ok_or_else(|| FabricError::Config("unknown UAR".into()))?;
        u.assign(num)?;
        n.qp_uar.insert(num, uar);
        n.qps.insert(
            num,
            QueuePair::new_ud(num, pd, send_cq, recv_cq, sq_depth, rq_depth),
        );
        Ok(num)
    }

    /// Creates an empty multicast group.
    pub fn create_mcast_group(&mut self) -> McGroupId {
        self.mcast_groups.push(Vec::new());
        McGroupId::new((self.mcast_groups.len() - 1) as u32)
    }

    /// Attaches a UD queue pair to a multicast group.
    pub fn join_mcast(
        &mut self,
        group: McGroupId,
        node: NodeId,
        qp: QpNum,
    ) -> Result<(), FabricError> {
        {
            let n = self.node(node)?;
            let q = n.qps.get(&qp).ok_or(FabricError::UnknownQp(node, qp))?;
            if q.qp_type != QpType::Ud {
                return Err(FabricError::BadQpState {
                    qp,
                    needed: "a UD queue pair",
                });
            }
        }
        let members = self
            .mcast_groups
            .get_mut(group.index())
            .ok_or_else(|| FabricError::Config("unknown multicast group".into()))?;
        if !members.contains(&(node, qp)) {
            members.push((node, qp));
        }
        Ok(())
    }

    /// Members of a multicast group.
    pub fn mcast_members(&self, group: McGroupId) -> &[(NodeId, QpNum)] {
        self.mcast_groups
            .get(group.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Posts an unreliable datagram to an explicit destination. UD messages
    /// are limited to one MTU; `wr.opcode` must be `Send`; the completion is
    /// local (generated as soon as the datagram is serialized — UD has no
    /// acknowledgements).
    pub fn post_send_ud(
        &mut self,
        node: NodeId,
        qp_num: QpNum,
        wr: WorkRequest,
        dst: (NodeId, QpNum),
        now: SimTime,
    ) -> Result<(), FabricError> {
        self.post_ud_inner(node, qp_num, wr, JobKind::UdSend, dst, now)
    }

    /// Posts an unreliable datagram to every member of a multicast group.
    /// The datagram is serialized **once** on the sender's egress; the
    /// switch replicates it to each member's ingress port.
    pub fn post_send_mcast(
        &mut self,
        node: NodeId,
        qp_num: QpNum,
        wr: WorkRequest,
        group: McGroupId,
        now: SimTime,
    ) -> Result<(), FabricError> {
        if group.index() >= self.mcast_groups.len() {
            return Err(FabricError::Config("unknown multicast group".into()));
        }
        // Destination fields are unused for multicast; the fan-out happens
        // at delivery from the group table.
        self.post_ud_inner(
            node,
            qp_num,
            wr,
            JobKind::McastSend { group },
            (node, qp_num),
            now,
        )
    }

    fn post_ud_inner(
        &mut self,
        node: NodeId,
        qp_num: QpNum,
        wr: WorkRequest,
        kind: JobKind,
        dst: (NodeId, QpNum),
        now: SimTime,
    ) -> Result<(), FabricError> {
        self.settle_node(node, now, false);
        if wr.opcode != Opcode::Send {
            return Err(FabricError::BadQpState {
                qp: qp_num,
                needed: "a Send opcode (UD)",
            });
        }
        if wr.len > self.cfg.mtu_bytes {
            return Err(FabricError::Config(format!(
                "UD datagrams are limited to one MTU ({} bytes), got {}",
                self.cfg.mtu_bytes, wr.len
            )));
        }
        let threshold = self.cfg.payload_copy_threshold;
        let seq = self.job_seq;
        // Pooled buffer taken before the node borrow; an error path below
        // simply drops it (rare, and the pool refills on the next recycle).
        let pooled = if wr.len <= threshold {
            Some(self.pool_buf(wr.len as usize))
        } else {
            None
        };
        let n = self.node_mut(node)?;
        let payload = {
            let qp = n
                .qps
                .get(&qp_num)
                .ok_or(FabricError::UnknownQp(node, qp_num))?;
            if qp.qp_type != QpType::Ud {
                return Err(FabricError::BadQpState {
                    qp: qp_num,
                    needed: "a UD queue pair",
                });
            }
            let mem = n
                .tpt
                .check(wr.lkey, wr.local_gpa, wr.len, Need::LocalRead, Some(qp.pd))?;
            if let Some(mut buf) = pooled {
                mem.read(wr.local_gpa, &mut buf)?;
                Some(buf)
            } else {
                None
            }
        };
        let qp = n
            .qps
            .get_mut(&qp_num)
            .ok_or(FabricError::UnknownQp(node, qp_num))?;
        qp.post_send(wr)?;
        qp.sq.pop_back();
        if let Some(&uid) = n.qp_uar.get(&qp_num) {
            if let Some(uar) = n.uars.get_mut(&uid) {
                uar.ring(qp_num)?;
            }
        }
        self.job_seq += 1;
        let job = EgressJob {
            seq,
            src_node: node,
            qp: qp_num,
            wr_id: wr.wr_id,
            opcode: wr.opcode,
            kind,
            dst_node: dst.0,
            dst_qp: dst.1,
            len: wr.len,
            sent: 0,
            signaled: wr.signaled,
            remote_gpa: Gpa::new(0),
            rkey: 0,
            imm: wr.imm,
            payload,
            attempt: 0,
            rnr_attempt: 0,
        };
        let n = self.node_mut(node)?;
        n.arbiter.enqueue(job);
        self.kick_link(node, now);
        Ok(())
    }

    // ----- data path ---------------------------------------------------

    /// Posts a send-side work request at simulated time `now`.
    ///
    /// Local memory keys are validated synchronously (as `ibv_post_send`
    /// does); remote keys are validated at the responder when data arrives.
    pub fn post_send(
        &mut self,
        node: NodeId,
        qp_num: QpNum,
        wr: WorkRequest,
        now: SimTime,
    ) -> Result<(), FabricError> {
        self.settle_node(node, now, false);
        let threshold = self.cfg.payload_copy_threshold;
        let seq = self.job_seq;
        let copy = wr.len <= threshold
            && matches!(
                wr.opcode,
                Opcode::Send | Opcode::RdmaWrite | Opcode::RdmaWriteImm
            );
        // Pooled buffer taken before the node borrow; an error path below
        // simply drops it (rare, and the pool refills on the next recycle).
        let pooled = if copy {
            Some(self.pool_buf(wr.len as usize))
        } else {
            None
        };
        let n = self.node_mut(node)?;
        // Local key validation + optional payload capture.
        let payload = {
            let qp = n
                .qps
                .get(&qp_num)
                .ok_or(FabricError::UnknownQp(node, qp_num))?;
            if qp.qp_type != QpType::Rc {
                return Err(FabricError::BadQpState {
                    qp: qp_num,
                    needed: "an RC queue pair (use post_send_ud)",
                });
            }
            let need = match wr.opcode {
                Opcode::RdmaRead => Need::LocalWrite,
                _ => Need::LocalRead,
            };
            let mem = n
                .tpt
                .check(wr.lkey, wr.local_gpa, wr.len, need, Some(qp.pd))?;
            if let Some(mut buf) = pooled {
                mem.read(wr.local_gpa, &mut buf)?;
                Some(buf)
            } else {
                None
            }
        };
        let (dst_node, dst_qp, kind, job_len) = {
            let qp = n
                .qps
                .get_mut(&qp_num)
                .ok_or(FabricError::UnknownQp(node, qp_num))?;
            qp.post_send(wr)?;
            let remote = qp.remote().ok_or(FabricError::BadQpState {
                qp: qp_num,
                needed: "a connected peer",
            })?;
            let kind = match wr.opcode {
                Opcode::Send => JobKind::Send,
                Opcode::RdmaWrite => JobKind::Write,
                Opcode::RdmaWriteImm => JobKind::WriteImm,
                Opcode::RdmaRead => JobKind::ReadRequest {
                    resp_len: wr.len,
                    remote_gpa: wr.remote.map(|r| r.gpa).unwrap_or(Gpa::new(0)),
                    rkey: wr.remote.map(|r| r.rkey).unwrap_or(0),
                    local_gpa: wr.local_gpa,
                    lkey: wr.lkey,
                },
                Opcode::Recv => {
                    return Err(FabricError::BadQpState {
                        qp: qp_num,
                        needed: "a send-side opcode",
                    })
                }
            };
            let job_len = if wr.opcode == Opcode::RdmaRead {
                READ_REQUEST_BYTES
            } else {
                wr.len
            };
            // The WQE is consumed by the engine immediately (the HCA's DMA
            // engine picks it up at doorbell time).
            qp.sq.pop_back();
            (remote.0, remote.1, kind, job_len)
        };
        // Ring the doorbell (guest-visible posting signal).
        if let Some(&uid) = n.qp_uar.get(&qp_num) {
            if let Some(uar) = n.uars.get_mut(&uid) {
                uar.ring(qp_num)?;
            }
        }
        self.job_seq += 1;
        let job = EgressJob {
            seq,
            src_node: node,
            qp: qp_num,
            wr_id: wr.wr_id,
            opcode: wr.opcode,
            kind,
            dst_node,
            dst_qp,
            len: job_len,
            sent: 0,
            signaled: wr.signaled,
            remote_gpa: wr.remote.map(|r| r.gpa).unwrap_or(Gpa::new(0)),
            rkey: wr.remote.map(|r| r.rkey).unwrap_or(0),
            imm: wr.imm,
            payload,
            attempt: 0,
            rnr_attempt: 0,
        };
        let n = self.node_mut(node)?;
        n.arbiter.enqueue(job);
        self.kick_link(node, now);
        Ok(())
    }

    /// Posts a receive-side work request.
    pub fn post_recv(
        &mut self,
        node: NodeId,
        qp_num: QpNum,
        rr: RecvRequest,
    ) -> Result<(), FabricError> {
        let n = self.node_mut(node)?;
        let qp = n
            .qps
            .get(&qp_num)
            .ok_or(FabricError::UnknownQp(node, qp_num))?;
        n.tpt
            .check(rr.lkey, rr.gpa, rr.len, Need::LocalWrite, Some(qp.pd))?;
        n.qps
            .get_mut(&qp_num)
            .ok_or(FabricError::UnknownQp(node, qp_num))?
            .post_recv(rr)
    }

    /// Polls up to `max` completions from a CQ.
    pub fn poll_cq(
        &mut self,
        node: NodeId,
        cq: CqNum,
        max: usize,
    ) -> Result<Vec<Cqe>, FabricError> {
        let n = self.node_mut(node)?;
        let c = n.cqs.get_mut(&cq).ok_or(FabricError::UnknownCq(node, cq))?;
        c.poll_batch(max)
    }

    /// Drains and discards up to `max` completions from a CQ, returning how
    /// many were consumed. Allocation-free flavour of [`Fabric::poll_cq`]
    /// for callers that only need the ring emptied; every per-entry side
    /// effect (ring cursor, guest-visible bytes) still happens.
    pub fn drain_cq(&mut self, node: NodeId, cq: CqNum, max: usize) -> Result<usize, FabricError> {
        let n = self.node_mut(node)?;
        let c = n.cqs.get_mut(&cq).ok_or(FabricError::UnknownCq(node, cq))?;
        let mut drained = 0;
        while drained < max {
            match c.poll()? {
                Some(_) => drained += 1,
                None => break,
            }
        }
        Ok(drained)
    }

    // ----- introspection & accounting -----------------------------------

    /// Location and capacity of a CQ's ring, for IBMon mapping.
    pub fn cq_ring_info(&self, node: NodeId, cq: CqNum) -> Result<(Gpa, u32), FabricError> {
        let n = self.node(node)?;
        let c = n.cqs.get(&cq).ok_or(FabricError::UnknownCq(node, cq))?;
        Ok((c.ring_gpa(), c.capacity()))
    }

    /// Ground-truth per-QP counters (used by tests and the oracle baseline).
    pub fn qp_counters(
        &self,
        node: NodeId,
        qp: QpNum,
    ) -> Result<crate::qp::QpCounters, FabricError> {
        let n = self.node(node)?;
        n.qps
            .get(&qp)
            .map(|q| q.counters)
            .ok_or(FabricError::UnknownQp(node, qp))
    }

    /// Per-node aggregate counters.
    pub fn node_counters(&self, node: NodeId) -> Result<NodeCounters, FabricError> {
        Ok(self.node(node)?.counters)
    }

    /// Current doorbell value for a QP (introspection).
    pub fn doorbell_value(&self, node: NodeId, qp: QpNum) -> Result<u32, FabricError> {
        let n = self.node(node)?;
        let uid = n.qp_uar.get(&qp).ok_or(FabricError::UnknownQp(node, qp))?;
        n.uars[uid].read(qp)
    }

    /// Bytes queued but not yet serialized on a node's egress link.
    pub fn egress_backlog(&self, node: NodeId) -> Result<u64, FabricError> {
        Ok(self.node(node)?.arbiter.pending_bytes())
    }

    /// Installs HCA QoS parameters (priority, WRR weight, rate limit) for a
    /// queue pair's egress flow — the hardware-side isolation knobs the
    /// paper contrasts with ResEx's hypervisor-side cap.
    pub fn set_qp_flow_params(
        &mut self,
        node: NodeId,
        qp: QpNum,
        params: FlowParams,
    ) -> Result<(), FabricError> {
        // No caller passes a timestamp here (QoS is installed at setup
        // time); the fabric's own clock is the right "as of now" for the
        // defensive settle.
        let now = self.agenda.now();
        self.settle_node(node, now, false);
        let n = self.node_mut(node)?;
        if !n.qps.contains_key(&qp) {
            return Err(FabricError::UnknownQp(node, qp));
        }
        n.arbiter.set_flow_params(qp, params);
        Ok(())
    }

    // ----- time & event loop --------------------------------------------

    /// When the fabric next needs to run, if ever.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.agenda.peek_time()
    }

    /// Processes all internal events due at or before `now`; returns the
    /// externally visible events that occurred, in time order.
    ///
    /// Convenience wrapper over [`Fabric::advance_into`] that allocates a
    /// fresh vector per call; hot loops should hold a scratch buffer and
    /// call `advance_into` instead.
    pub fn advance(&mut self, now: SimTime) -> Vec<(SimTime, FabricEvent)> {
        let mut out = Vec::new();
        self.advance_into(now, &mut out);
        out
    }

    /// Processes all internal events due at or before `now`, appending the
    /// externally visible events (in time order) to the caller-owned `out`
    /// buffer. The fabric's internal output staging keeps its capacity, so
    /// a steady-state advance performs no heap allocation.
    pub fn advance_into(&mut self, now: SimTime, out: &mut Vec<(SimTime, FabricEvent)>) {
        while self.agenda.peek_time().is_some_and(|t| t <= now) {
            let Some((t, timer)) = self.agenda.pop() else {
                break;
            };
            if let Err(e) = self.handle(t, timer) {
                if self.tracer.enabled() {
                    self.tracer.instant(
                        t,
                        subsystem::FABRIC_ENGINE,
                        "internal_error",
                        Scope::Global,
                        vec![("error", format!("{e}").into())],
                    );
                }
                self.internal_errors.push((t, e));
            }
        }
        out.append(&mut self.outputs);
    }

    fn kick_link(&mut self, node: NodeId, now: SimTime) {
        self.kick_link_inner(node, now, true);
    }

    /// Starts the next grant on `node`'s egress link. `allow_batch` is
    /// false only when called from `settle_node`, whose caller is about to
    /// mutate link state and must not find a freshly-opened batch.
    fn kick_link_inner(&mut self, node: NodeId, now: SimTime, allow_batch: bool) {
        let (grant_bytes, mtu, overhead) = (
            self.cfg.grant_mtus * self.cfg.mtu_bytes,
            self.cfg.mtu_bytes,
            self.cfg.wqe_overhead,
        );
        let n = match self.nodes.get_mut(node.index()) {
            Some(n) => n,
            None => return,
        };
        if n.link_busy {
            return;
        }
        match n.arbiter.next_grant(grant_bytes, mtu, now) {
            GrantDecision::Grant(plan) => {
                n.link_busy = true;
                let mut dur = self.cfg.serialization_time(plan.bytes as u64);
                if plan.is_first {
                    dur += overhead;
                }
                if self.cfg.hw_jitter > 0.0 {
                    // Multiplicative timing noise, clamped to stay causal.
                    let f = 1.0 + self.cfg.hw_jitter * self.jitter_rng.standard_normal();
                    dur = dur.mul_f64(f.max(0.1));
                }
                if let Some(f) = self.faults.as_mut() {
                    if let Some(extra) = f.grant_delay(now) {
                        dur += extra;
                        if self.tracer.enabled() {
                            self.tracer.instant(
                                now,
                                subsystem::FAULTS,
                                "grant_delay",
                                Scope::Qp(plan.job.qp.raw()),
                                vec![("extra_ns", extra.as_nanos().into())],
                            );
                        }
                    }
                }
                n.counters.busy += dur;
                if self.tracer.enabled() {
                    self.tracer.complete(
                        now,
                        dur,
                        subsystem::FABRIC_LINK,
                        "grant",
                        Scope::Qp(plan.job.qp.raw()),
                        vec![
                            ("bytes", plan.bytes.into()),
                            ("mtus", plan.mtus.into()),
                            ("first", plan.is_first.into()),
                            ("finishes_job", plan.job_finished.into()),
                        ],
                    );
                }
                // Batched fast path: a multi-grant transfer on an otherwise
                // idle, unlimited, fault- and jitter-free link serializes
                // its chunks back-to-back with no other event able to run
                // between them, so the per-chunk `GrantDone` events are
                // collapsed into a single `BatchDone` at the transfer's
                // end. `settle_node` replays the chunks at their historical
                // times if anything touches the link before then.
                let batchable = allow_batch
                    && !plan.job_finished
                    && self.cfg.hw_jitter == 0.0
                    && self.faults.is_none()
                    && !self.tracer.enabled()
                    && self.nodes.len() == 2
                    && !matches!(plan.job.kind, JobKind::McastSend { .. } | JobKind::UdSend)
                    && {
                        let n = &self.nodes[node.index()];
                        n.next_retry.is_none()
                            && n.arbiter.sole_unlimited_flow() == Some(plan.job.qp)
                    };
                if batchable {
                    let mut end = now + dur;
                    let mut prev = now;
                    let mut left = plan.job.len - plan.job.sent;
                    while left > 0 {
                        let bytes = left.min(grant_bytes);
                        prev = end;
                        end += self.cfg.serialization_time(bytes as u64);
                        left -= bytes;
                    }
                    let timer = self.agenda.schedule_at(end, Timer::BatchDone { node });
                    self.nodes[node.index()].batch = Some(LinkBatch {
                        plan0: plan,
                        start: now,
                        dur0: dur,
                        ser: self.cfg.serialization_time(grant_bytes as u64),
                        fire_end: end,
                        prev_end: prev,
                        timer,
                    });
                } else {
                    self.agenda
                        .schedule_at(now + dur, Timer::GrantDone { node, plan });
                }
            }
            GrantDecision::Throttled { until } => {
                // Arm (or tighten) a retry when every pending flow is
                // rate-limited. The guard avoids piling up duplicates, and
                // the retry is always strictly in the future (a same-instant
                // retry would spin).
                let until = until.max(now + SimDuration::from_nanos(1));
                if n.next_retry.is_none_or(|t| until < t) {
                    n.next_retry = Some(until);
                    if self.tracer.enabled() {
                        self.tracer.instant(
                            now,
                            subsystem::FABRIC_LINK,
                            "arb_stall",
                            Scope::Node(node.raw()),
                            vec![
                                ("until_ns", until.as_nanos().into()),
                                (
                                    "pending_bytes",
                                    self.nodes[node.index()].arbiter.pending_bytes().into(),
                                ),
                            ],
                        );
                    }
                    self.agenda.schedule_at(until, Timer::LinkRetry { node });
                }
            }
            GrantDecision::Idle => {}
        }
    }

    /// Applies the sender- and ingress-side effects of one completed
    /// serialization chunk at its historical completion time `end` —
    /// exactly what `on_grant_done` does for a fault-free, untraced chunk.
    fn apply_batched_chunk(&mut self, node: NodeId, plan: GrantPlan, end: SimTime) {
        let one_way = self.cfg.one_way_latency();
        let chunk_ser = self.cfg.serialization_time(plan.bytes as u64);
        if let Some(n) = self.nodes.get_mut(node.index()) {
            n.counters.bytes_sent += plan.bytes as u64;
            n.counters.mtus_sent += plan.mtus as u64;
            n.counters.grants += 1;
            if let Some(qp) = n.qps.get_mut(&plan.job.qp) {
                qp.counters.bytes_sent += plan.bytes as u64;
                qp.counters.mtus_sent += plan.mtus as u64;
            }
        }
        let arrival = end + one_way;
        let delivery = self.ingress_delivery(plan.job.dst_node, arrival, chunk_ser);
        if plan.job_finished {
            self.agenda
                .schedule_at(delivery, Timer::Deliver { job: plan.job });
        }
    }

    /// Brings a node with a pending batched transfer back to the exact
    /// state the chunk-at-a-time path would have at `upto`: chunks whose
    /// serialization finished by then are applied at their historical
    /// times, and a chunk still on the wire becomes an ordinary
    /// `GrantDone` event. A no-op when no batch is pending. Called from
    /// the `BatchDone` timer itself and from every operation that could
    /// observe or mutate link state mid-batch.
    fn settle_node(&mut self, node: NodeId, upto: SimTime, inclusive: bool) {
        let Some(batch) = self
            .nodes
            .get_mut(node.index())
            .and_then(|n| n.batch.take())
        else {
            return;
        };
        self.agenda.cancel(batch.timer);
        let (grant_bytes, mtu) = (self.cfg.grant_mtus * self.cfg.mtu_bytes, self.cfg.mtu_bytes);
        // A chunk ending exactly at `upto` is NOT applied here: in the
        // chunk-at-a-time execution its `GrantDone` would be processed
        // after the already-queued event that triggered this settle, so it
        // must become a real event again to keep same-instant ordering.
        let mut end = batch.start + batch.dur0;
        if end > upto || (end == upto && !inclusive) {
            // Chunk 0 is still serializing: fall back to a plain grant.
            self.agenda.schedule_at(
                end,
                Timer::GrantDone {
                    node,
                    plan: batch.plan0,
                },
            );
            return;
        }
        let seq = batch.plan0.job.seq;
        let mut left = batch.plan0.job.len - batch.plan0.job.sent;
        self.apply_batched_chunk(node, batch.plan0, end);
        while left > 0 {
            let start = end;
            let bytes = left.min(grant_bytes);
            left -= bytes;
            let dur = self.cfg.serialization_time(bytes as u64);
            let plan = match self.nodes[node.index()]
                .arbiter
                .next_grant(grant_bytes, mtu, start)
            {
                GrantDecision::Grant(p) => p,
                _ => {
                    // Unreachable for a batched (sole, unlimited) flow;
                    // record the inconsistency instead of dropping the tail.
                    self.internal_errors.push((
                        start,
                        FabricError::InternalInconsistency(
                            "batched link replay found no grant to serve".into(),
                        ),
                    ));
                    return;
                }
            };
            debug_assert_eq!(plan.job.seq, seq, "batched replay switched jobs");
            debug_assert_eq!(plan.bytes, bytes, "batched replay chunk size drifted");
            debug_assert_eq!(plan.job_finished, left == 0);
            if let Some(n) = self.nodes.get_mut(node.index()) {
                n.counters.busy += dur;
            }
            end = start + dur;
            if end > upto || (end == upto && !inclusive) {
                // This chunk is on the wire right now: hand it back to the
                // ordinary grant-completion path.
                self.agenda
                    .schedule_at(end, Timer::GrantDone { node, plan });
                return;
            }
            self.apply_batched_chunk(node, plan, end);
        }
        // The whole batch completed by `upto`: free the link and look for
        // the next job, exactly as the final grant's completion would. The
        // kick must not open a fresh batch — our caller may be about to
        // mutate link state.
        if let Some(n) = self.nodes.get_mut(node.index()) {
            n.link_busy = false;
        }
        self.kick_link_inner(node, end, false);
    }

    /// Settles every link's pending batch up to `now`. Public so the
    /// platform can flush lazily-batched serialization effects before
    /// reading fabric counters mid-run or at end of run.
    pub fn settle_links(&mut self, now: SimTime) {
        for i in 0..self.nodes.len() {
            self.settle_node(NodeId::new(i as u32), now, false);
        }
    }

    /// If a pending batch's final chunk completes exactly at `t`, returns
    /// the previous chunk boundary — the moment the chunk-at-a-time
    /// execution would have armed that completion. The event loop uses it
    /// to restore same-instant ordering against events armed earlier.
    pub fn batch_fire_arming(&self, t: SimTime) -> Option<SimTime> {
        self.nodes.iter().find_map(|n| {
            n.batch
                .as_ref()
                .filter(|b| b.fire_end == t)
                .map(|b| b.prev_end)
        })
    }

    /// Applies a batched chunk whose serialization ends exactly at `t`
    /// when the chunk-at-a-time execution would have processed that
    /// completion *before* an external event armed at `armed_at`: the
    /// per-chunk completion would have been armed at the previous chunk
    /// boundary, so it wins whenever that boundary is no later than
    /// `armed_at` (the event loop re-arms the fabric before anything
    /// else at the same instant, so ties also go to the fabric).
    pub fn presync_boundary(&mut self, t: SimTime, armed_at: SimTime) {
        for i in 0..self.nodes.len() {
            let Some(b) = self.nodes[i].batch.as_ref() else {
                continue;
            };
            let e0 = b.start + b.dur0;
            let prev = if t == b.fire_end {
                b.prev_end
            } else if t == e0 {
                b.start
            } else if t > e0 && t < b.fire_end {
                let since = (t - e0).as_nanos();
                if !since.is_multiple_of(b.ser.as_nanos()) {
                    continue;
                }
                t - b.ser
            } else {
                continue;
            };
            if prev <= armed_at {
                self.settle_node(NodeId::new(i as u32), t, true);
            }
        }
    }

    fn handle(&mut self, t: SimTime, timer: Timer) -> Result<(), FabricError> {
        match timer {
            Timer::GrantDone { node, plan } => self.on_grant_done(t, node, plan),
            Timer::LinkRetry { node } => {
                if let Some(n) = self.nodes.get_mut(node.index()) {
                    if n.next_retry == Some(t) {
                        n.next_retry = None;
                    }
                }
                self.kick_link(node, t);
                Ok(())
            }
            Timer::Deliver { job } => self.on_final_delivery(t, job),
            Timer::SenderComplete {
                node,
                qp,
                wr_id,
                opcode,
                byte_len,
            } => {
                self.write_send_cqe(t, node, qp, wr_id, opcode, WcStatus::Success, byte_len);
                Ok(())
            }
            Timer::Retransmit { job } => self.on_retransmit(t, job),
            Timer::Reconnect { node, qp } => self.on_reconnect(t, node, qp),
            Timer::BatchDone { node } => {
                self.settle_node(node, t, false);
                Ok(())
            }
        }
    }

    fn on_grant_done(
        &mut self,
        t: SimTime,
        node: NodeId,
        plan: GrantPlan,
    ) -> Result<(), FabricError> {
        let one_way = self.cfg.one_way_latency();
        let chunk_ser = self.cfg.serialization_time(plan.bytes as u64);
        {
            let n = self.nodes.get_mut(node.index()).ok_or_else(|| {
                FabricError::InternalInconsistency(format!(
                    "grant completed on unknown node {node}"
                ))
            })?;
            n.counters.bytes_sent += plan.bytes as u64;
            n.counters.mtus_sent += plan.mtus as u64;
            n.counters.grants += 1;
            let mut qp_bytes_total = 0;
            if let Some(qp) = n.qps.get_mut(&plan.job.qp) {
                qp.counters.bytes_sent += plan.bytes as u64;
                qp.counters.mtus_sent += plan.mtus as u64;
                qp_bytes_total = qp.counters.bytes_sent;
            }
            n.link_busy = false;
            if self.tracer.enabled() {
                self.tracer.counter(
                    t,
                    subsystem::FABRIC_LINK,
                    "egress_bytes",
                    Scope::Qp(plan.job.qp.raw()),
                    qp_bytes_total as f64,
                );
                self.tracer.counter(
                    t,
                    subsystem::FABRIC_LINK,
                    "queue_depth_bytes",
                    Scope::Node(node.raw()),
                    n.arbiter.pending_bytes() as f64,
                );
            }
        }
        let arrival = t + one_way;
        // Wire faults are drawn once per fully-serialized message, so a
        // multi-grant transfer has one loss opportunity per attempt, not
        // per chunk.
        let wire_fault = if plan.job_finished {
            self.draw_wire_fault(t, node, plan.job.qp)
        } else {
            None
        };
        match plan.job.kind {
            JobKind::McastSend { group } => {
                // UD completions are local: the datagram left the HCA.
                if plan.job_finished && plan.job.signaled {
                    self.agenda.schedule_at(
                        t,
                        Timer::SenderComplete {
                            node: plan.job.src_node,
                            qp: plan.job.qp,
                            wr_id: plan.job.wr_id,
                            opcode: plan.job.opcode,
                            byte_len: plan.job.len,
                        },
                    );
                }
                // A wire fault on the sender's single egress serialization
                // loses every replica; UD has no retransmission, so the
                // datagram simply vanishes (the local completion stands).
                if wire_fault.is_some() {
                    self.kick_link(node, t);
                    return Ok(());
                }
                // Switch replication: one egress serialization, one ingress
                // arrival per member.
                let members = self
                    .mcast_groups
                    .get(group.index())
                    .cloned()
                    .unwrap_or_default();
                for (dst_node, dst_qp) in members {
                    // The ingress cursor advances for every chunk; only the
                    // final one produces receiver-side effects, so only it
                    // gets a timer.
                    let delivery = self.ingress_delivery(dst_node, arrival, chunk_ser);
                    if plan.job_finished {
                        let mut member_job = plan.job.clone();
                        member_job.kind = JobKind::UdSend;
                        member_job.dst_node = dst_node;
                        member_job.dst_qp = dst_qp;
                        self.agenda
                            .schedule_at(delivery, Timer::Deliver { job: member_job });
                    }
                }
            }
            JobKind::UdSend => {
                if plan.job_finished && plan.job.signaled {
                    self.agenda.schedule_at(
                        t,
                        Timer::SenderComplete {
                            node: plan.job.src_node,
                            qp: plan.job.qp,
                            wr_id: plan.job.wr_id,
                            opcode: plan.job.opcode,
                            byte_len: plan.job.len,
                        },
                    );
                }
                if wire_fault.is_none() {
                    let delivery = self.ingress_delivery(plan.job.dst_node, arrival, chunk_ser);
                    if plan.job_finished {
                        self.agenda
                            .schedule_at(delivery, Timer::Deliver { job: plan.job });
                    }
                }
            }
            _ => {
                // RC transports retransmit: a lost or corrupted message is
                // re-serialized after the transport timeout, re-consuming
                // egress bandwidth (the paper's "restored latency" under
                // injected loss).
                if wire_fault.is_some() {
                    self.on_rc_wire_fault(t, plan.job);
                } else {
                    // Every chunk advances the destination's ingress cursor;
                    // only the message's final chunk triggers receiver-side
                    // effects, so intermediate chunks get no timer at all.
                    let delivery = self.ingress_delivery(plan.job.dst_node, arrival, chunk_ser);
                    if plan.job_finished {
                        self.agenda
                            .schedule_at(delivery, Timer::Deliver { job: plan.job });
                    }
                }
            }
        }
        self.kick_link(node, t);
        Ok(())
    }

    /// Draws the per-message wire-fault outcome (the flap state first —
    /// pure clock arithmetic, so it never perturbs the RNG streams — then
    /// loss, then corruption), counting and tracing a hit against the
    /// sending node.
    fn draw_wire_fault(&mut self, t: SimTime, node: NodeId, qp: QpNum) -> Option<WireFault> {
        let f = self.faults.as_mut()?;
        let (fault, name) = if f.link_down(t) {
            // A downed link behaves like 100% loss: the RC retransmission
            // machinery (and, with recovery armed, the connection manager)
            // rides the outage out.
            (WireFault::Lost, "link_down")
        } else if f.lose_message(t) {
            (WireFault::Lost, "link_loss")
        } else if f.corrupt_message(t) {
            (WireFault::Corrupted, "link_corrupt")
        } else {
            return None;
        };
        if let Some(n) = self.nodes.get_mut(node.index()) {
            match fault {
                WireFault::Lost => n.counters.wire_lost += 1,
                WireFault::Corrupted => n.counters.wire_corrupted += 1,
            }
        }
        if self.tracer.enabled() {
            self.tracer
                .instant(t, subsystem::FAULTS, name, Scope::Qp(qp.raw()), vec![]);
        }
        Some(fault)
    }

    /// A reliably-connected message was lost (or arrived corrupted and was
    /// NAKed): schedule a retransmission, or exhaust the retry budget and
    /// error the requester's QP.
    fn on_rc_wire_fault(&mut self, t: SimTime, mut job: EgressJob) {
        job.sent = 0;
        job.attempt += 1;
        if job.attempt > self.cfg.retry_count {
            if self.tracer.enabled() {
                self.tracer.instant(
                    t,
                    subsystem::FAULTS,
                    "retry_exhausted",
                    Scope::Qp(job.qp.raw()),
                    vec![("attempts", job.attempt.into())],
                );
            }
            if self.recovery {
                // Connection manager armed: no error completion, no flush.
                // The message (and the QP's backlog) is journaled and the
                // QP cycles through reconnection; for a lost read response
                // the replay restarts the response stream, so the initiator
                // eventually sees its success CQE instead of RetryExceeded.
                self.fail_qp_with_journal(t, job);
                return;
            }
            // A lost read *response* times out at the initiator: the error
            // completion and the ERROR transition belong to the requester's
            // QP, not the responder's.
            if let JobKind::ReadResponse {
                initiator_wr,
                initiator_qp,
                ..
            } = &job.kind
            {
                let (wr, qp) = (*initiator_wr, *initiator_qp);
                self.write_send_cqe(
                    t,
                    job.dst_node,
                    qp,
                    wr,
                    Opcode::RdmaRead,
                    WcStatus::RetryExceeded,
                    job.len,
                );
                let _ = self.set_qp_error(job.dst_node, qp, t);
            } else {
                self.complete_sender_err(t, &job, WcStatus::RetryExceeded);
                let _ = self.set_qp_error(job.src_node, job.qp, t);
            }
            return;
        }
        if let Some(n) = self.nodes.get_mut(job.src_node.index()) {
            n.counters.retransmits += 1;
            if let Some(qp) = n.qps.get_mut(&job.qp) {
                qp.counters.retransmits += 1;
            }
        }
        if self.tracer.enabled() {
            self.tracer.instant(
                t,
                subsystem::FAULTS,
                "retransmit",
                Scope::Qp(job.qp.raw()),
                vec![("attempt", job.attempt.into()), ("bytes", job.len.into())],
            );
        }
        self.agenda
            .schedule_at(t + self.cfg.retransmit_timeout, Timer::Retransmit { job });
    }

    /// A retransmission timer fired: re-enqueue the message on its source
    /// link, unless its QP has since been destroyed (the message dies
    /// silently) or errored — flushed and dead without recovery, journaled
    /// into the QP's connection-manager entry with it.
    fn on_retransmit(&mut self, t: SimTime, job: EgressJob) -> Result<(), FabricError> {
        self.settle_node(job.src_node, t, false);
        let node = job.src_node;
        let Some(n) = self.nodes.get_mut(node.index()) else {
            return Err(FabricError::InternalInconsistency(format!(
                "retransmit timer fired for unknown node {node}"
            )));
        };
        match n.qps.get(&job.qp) {
            Some(qp) if qp.state() != QpState::Error => {}
            Some(_) if self.recovery => {
                // The QP broke while this message's retransmit timer was in
                // flight. It is still unacked, so it belongs in the journal.
                if let Some(entry) = self.cm.get_mut(&(node, job.qp)) {
                    let mut job = job;
                    job.sent = 0;
                    job.attempt = 0;
                    job.rnr_attempt = 0;
                    entry.journal.push(job);
                }
                return Ok(());
            }
            _ => return Ok(()),
        }
        n.arbiter.enqueue(job);
        self.kick_link(node, t);
        Ok(())
    }

    /// Transitions a queue pair to `ERROR` (from any state), flushing its
    /// queued egress work and posted receives with `WrFlushError` CQEs —
    /// `ibv_modify_qp(..., IBV_QPS_ERR)` flush semantics. Idempotent.
    /// Chunks already on the wire still arrive; subsequent posts are
    /// rejected with `BadQpState`.
    pub fn set_qp_error(
        &mut self,
        node: NodeId,
        qp_num: QpNum,
        now: SimTime,
    ) -> Result<(), FabricError> {
        self.settle_node(node, now, false);
        let (purged, recvs) = {
            let n = self.node_mut(node)?;
            let qp = n
                .qps
                .get_mut(&qp_num)
                .ok_or(FabricError::UnknownQp(node, qp_num))?;
            qp.to_error();
            let recvs: Vec<RecvRequest> = qp.rq.drain(..).collect();
            let purged = n.arbiter.purge_qp(qp_num);
            (purged, recvs)
        };
        if self.tracer.enabled() {
            self.tracer.instant(
                now,
                subsystem::FABRIC_ENGINE,
                "qp_error_flush",
                Scope::Qp(qp_num.raw()),
                vec![
                    ("flushed_sends", (purged.len() as u64).into()),
                    ("flushed_recvs", (recvs.len() as u64).into()),
                ],
            );
        }
        let flushed = (purged.len() + recvs.len()) as u64;
        for job in &purged {
            self.complete_sender_err(now, job, WcStatus::WrFlushError);
        }
        let n = self.node_mut(node)?;
        for rr in recvs {
            let (recv_cq, counter) = match n.qps.get_mut(&qp_num) {
                Some(qp) => (qp.recv_cq, qp.next_rq_counter()),
                None => break,
            };
            let cqe = Cqe {
                wr_id: rr.wr_id,
                qp_num,
                byte_len: 0,
                wqe_counter: counter,
                opcode: Opcode::Recv,
                status: WcStatus::WrFlushError,
                imm_data: 0,
            };
            Self::push_cqe(n, qp_num, recv_cq, cqe);
        }
        if let Some(qp) = n.qps.get_mut(&qp_num) {
            qp.counters.flushed += flushed;
        }
        // An injected ERROR still flushes (callers rely on draining the
        // WrFlushError CQEs), but with recovery armed the CM brings the
        // connection itself back — with nothing to replay.
        if self.recovery && !self.cm.contains_key(&(node, qp_num)) {
            self.break_qp(now, node, qp_num, Vec::new(), Vec::new());
        }
        Ok(())
    }

    /// Recovery-path QP failure: where the legacy path flushes
    /// `WrFlushError` CQEs and leaves the QP broken, the connection
    /// manager journals the failing message (reset to a fresh transmission
    /// cycle) together with the QP's queued egress backlog and posted
    /// receives, transitions the QP to `ERROR` *without* surfacing any
    /// completion, and schedules a reconnect. If the QP is already under
    /// the CM (broken while this message's timer was in flight), the
    /// message just joins the journal.
    fn fail_qp_with_journal(&mut self, t: SimTime, mut job: EgressJob) {
        self.settle_node(job.src_node, t, false);
        job.sent = 0;
        job.attempt = 0;
        job.rnr_attempt = 0;
        let key = (job.src_node, job.qp);
        if let Some(entry) = self.cm.get_mut(&key) {
            entry.journal.push(job);
            return;
        }
        let (node, qp_num) = key;
        let (journal, recvs) = {
            let Ok(n) = self.node_mut(node) else { return };
            let Some(qp) = n.qps.get_mut(&qp_num) else {
                return;
            };
            qp.to_error();
            let recvs: Vec<RecvRequest> = qp.rq.drain(..).collect();
            // The failing message was dequeued first, so it replays first;
            // the purged backlog follows in queue order.
            let mut journal = vec![job];
            journal.extend(n.arbiter.purge_qp(qp_num));
            (journal, recvs)
        };
        self.break_qp(t, node, qp_num, journal, recvs);
    }

    /// Registers a broken QP with the connection manager and arms its
    /// first reconnect timer.
    fn break_qp(
        &mut self,
        t: SimTime,
        node: NodeId,
        qp_num: QpNum,
        journal: Vec<EgressJob>,
        recvs: Vec<RecvRequest>,
    ) {
        if self.tracer.enabled() {
            self.tracer.instant(
                t,
                subsystem::RECOVERY,
                "qp_broken",
                Scope::Qp(qp_num.raw()),
                vec![
                    ("journaled_sends", (journal.len() as u64).into()),
                    ("journaled_recvs", (recvs.len() as u64).into()),
                ],
            );
        }
        self.cm.insert(
            (node, qp_num),
            CmEntry {
                journal,
                recvs,
                attempt: 0,
                broken_at: t,
            },
        );
        self.schedule_reconnect(t, node, qp_num, 0);
    }

    /// Exponential reconnect backoff: attempt `n` waits
    /// `reconnect_backoff << min(n, reconnect_max_shift)`, with the shift
    /// additionally capped at [`MAX_BACKOFF_SHIFT`].
    fn reconnect_wait(&self, attempt: u32) -> SimDuration {
        let shift = attempt
            .min(self.cfg.reconnect_max_shift)
            .min(MAX_BACKOFF_SHIFT);
        SimDuration::from_nanos(
            self.cfg
                .reconnect_backoff
                .as_nanos()
                .saturating_mul(1u64 << shift),
        )
    }

    fn schedule_reconnect(&mut self, t: SimTime, node: NodeId, qp: QpNum, attempt: u32) {
        self.agenda.schedule_at(
            t + self.reconnect_wait(attempt),
            Timer::Reconnect { node, qp },
        );
    }

    /// A reconnect timer fired. If the flapping link is still down the QP
    /// stays in `Reconnecting` and backs off again; otherwise the CM cycles
    /// it RESET→INIT→RTR→RTS toward its learned peer, re-posts the
    /// journaled receives, and replays the journaled sends in order.
    fn on_reconnect(&mut self, t: SimTime, node: NodeId, qp_num: QpNum) -> Result<(), FabricError> {
        self.settle_node(node, t, false);
        let key = (node, qp_num);
        if !self.cm.contains_key(&key) {
            return Ok(()); // stale timer: already recovered or abandoned
        }
        if self.faults.as_ref().is_some_and(|f| f.link_is_down(t)) {
            let entry = self.cm.get_mut(&key).expect("presence checked above");
            entry.attempt = entry.attempt.saturating_add(1);
            let attempt = entry.attempt;
            if self.tracer.enabled() {
                self.tracer.instant(
                    t,
                    subsystem::RECOVERY,
                    "reconnect_deferred",
                    Scope::Qp(qp_num.raw()),
                    vec![("attempt", attempt.into())],
                );
            }
            self.schedule_reconnect(t, node, qp_num, attempt);
            return Ok(());
        }
        let entry = self.cm.remove(&key).expect("presence checked above");
        let replayed = entry.journal.len() as u64;
        {
            let n = self.node_mut(node)?;
            let Some(qp) = n.qps.get_mut(&qp_num) else {
                // QP destroyed while broken: the journal dies with it.
                return Ok(());
            };
            if qp.state() != QpState::Error {
                return Ok(()); // recycled out-of-band; nothing to do
            }
            let Some(remote) = qp.remote() else {
                // Never connected; a reconnect has no peer to walk back to.
                return Ok(());
            };
            qp.reset()?;
            qp.to_init()?;
            qp.to_rtr(remote)?;
            qp.to_rts()?;
            qp.counters.reconnects += 1;
            qp.counters.replayed += replayed;
            // Re-posting directly (not via post_recv) keeps the posted-recv
            // counters at their original values: these buffers were already
            // posted once and never completed.
            for rr in entry.recvs {
                qp.rq.push_back(rr);
            }
            for job in entry.journal {
                n.arbiter.enqueue(job);
            }
        }
        if self.tracer.enabled() {
            let downtime = t.saturating_duration_since(entry.broken_at);
            self.tracer.instant(
                t,
                subsystem::RECOVERY,
                "reconnect",
                Scope::Qp(qp_num.raw()),
                vec![
                    ("attempt", entry.attempt.into()),
                    ("replayed", replayed.into()),
                    ("downtime_ns", downtime.as_nanos().into()),
                ],
            );
        }
        self.outputs.push((
            t,
            FabricEvent::QpReconnected {
                node,
                qp: qp_num,
                replayed,
            },
        ));
        self.kick_link(node, t);
        Ok(())
    }

    /// Ingress contention at the destination (incast): a chunk finishes
    /// arriving no earlier than its wire arrival, and no earlier than one
    /// chunk-serialization after the previous chunk accepted by the same
    /// port. A single paced sender never queues (cut-through); multiple
    /// senders converge to the port's line rate.
    fn ingress_delivery(
        &mut self,
        dst_node: NodeId,
        arrival: SimTime,
        chunk_ser: SimDuration,
    ) -> SimTime {
        if let Some(dst) = self.nodes.get_mut(dst_node.index()) {
            let d = arrival.max(dst.ingress_free + chunk_ser);
            dst.ingress_free = d;
            d
        } else {
            arrival
        }
    }

    /// Receiver-side effects once a message has fully arrived.
    fn on_final_delivery(&mut self, t: SimTime, mut job: EgressJob) -> Result<(), FabricError> {
        if self.tracer.enabled() {
            self.tracer.instant(
                t,
                subsystem::FABRIC_ENGINE,
                "deliver",
                Scope::Qp(job.dst_qp.raw()),
                vec![
                    ("bytes", job.len.into()),
                    ("src_qp", job.qp.raw().into()),
                    ("opcode", format!("{:?}", job.opcode).into()),
                ],
            );
        }
        match job.kind.clone() {
            JobKind::UdSend => self.deliver_ud(t, job),
            JobKind::McastSend { .. } => Err(FabricError::InternalInconsistency(
                "multicast job reached final delivery without fanning out".into(),
            )),
            JobKind::Send => self.deliver_two_sided(t, job, None),
            JobKind::WriteImm => {
                // Place the data first, then consume a receive.
                if let Err(status) = self.place_rdma_write(&job) {
                    self.complete_sender_err(t, &job, status);
                    return Ok(());
                }
                let imm = job.imm;
                self.deliver_two_sided(t, job, Some(imm))
            }
            JobKind::Write => {
                if let Err(status) = self.place_rdma_write(&job) {
                    self.complete_sender_err(t, &job, status);
                    self.recycle_payload(job.payload.take());
                    return Ok(());
                }
                self.outputs.push((
                    t,
                    FabricEvent::RdmaWriteDelivered {
                        node: job.dst_node,
                        qp: job.dst_qp,
                        gpa: job.remote_gpa,
                        byte_len: job.len,
                    },
                ));
                self.schedule_sender_success(t, &job, job.len);
                self.recycle_payload(job.payload.take());
                Ok(())
            }
            JobKind::ReadRequest {
                resp_len,
                remote_gpa,
                rkey,
                local_gpa,
                lkey,
            } => self.start_read_response(t, job, resp_len, remote_gpa, rkey, local_gpa, lkey),
            JobKind::ReadResponse {
                local_gpa,
                lkey,
                initiator_wr,
                initiator_qp,
            } => self.finish_read(t, job, local_gpa, lkey, initiator_wr, initiator_qp),
        }
    }

    /// Unreliable-datagram arrival: consume a receive WQE if present,
    /// otherwise drop silently (UD has no NAKs; the sender never learns).
    fn deliver_ud(&mut self, t: SimTime, mut job: EgressJob) -> Result<(), FabricError> {
        let dst = job.dst_node;
        let payload = job.payload.take();
        let Some(n) = self.nodes.get_mut(dst.index()) else {
            return Ok(());
        };
        let rr = match n.qps.get_mut(&job.dst_qp) {
            Some(qp) if qp.qp_type == QpType::Ud => qp.rq.pop_front(),
            _ => None,
        };
        let rr = match rr {
            Some(rr) => rr,
            None => {
                n.counters.ud_drops += 1;
                self.recycle_payload(payload);
                return Ok(());
            }
        };
        if rr.len >= job.len {
            if let Some(payload) = &payload {
                let pd = n.qps.get(&job.dst_qp).map(|q| q.pd);
                if let Ok(mem) = n.tpt.check(rr.lkey, rr.gpa, job.len, Need::LocalWrite, pd) {
                    let _ = mem.dma_write(rr.gpa, payload);
                }
            }
        }
        let (recv_cq, counter) = match n.qps.get_mut(&job.dst_qp) {
            Some(qp) => (qp.recv_cq, qp.next_rq_counter()),
            None => {
                self.recycle_payload(payload);
                return Ok(());
            }
        };
        let cqe = Cqe {
            wr_id: rr.wr_id,
            qp_num: job.dst_qp,
            byte_len: job.len,
            wqe_counter: counter,
            opcode: Opcode::Recv,
            status: WcStatus::Success,
            imm_data: job.imm,
        };
        Self::push_cqe(n, job.dst_qp, recv_cq, cqe);
        self.outputs.push((
            t,
            FabricEvent::RecvComplete {
                node: dst,
                qp: job.dst_qp,
                wr_id: rr.wr_id,
                byte_len: job.len,
                imm: None,
            },
        ));
        self.recycle_payload(payload);
        Ok(())
    }

    /// Send / WriteImm arrival: consume a receive WQE and write a CQE.
    fn deliver_two_sided(
        &mut self,
        t: SimTime,
        mut job: EgressJob,
        imm: Option<u32>,
    ) -> Result<(), FabricError> {
        let dst = job.dst_node;
        let rr = {
            let n = match self.nodes.get_mut(dst.index()) {
                Some(n) => n,
                None => return Ok(()),
            };
            match n.qps.get_mut(&job.dst_qp) {
                Some(qp) => qp.rq.pop_front(),
                None => None,
            }
        };
        let rr = match rr {
            Some(rr) => rr,
            // The RNR path may retransmit, so the job keeps its payload.
            None => return self.on_rnr_nak(t, job),
        };
        let payload = job.payload.take();
        // For plain sends the payload lands in the receive buffer; WriteImm
        // data has already been placed at the remote address.
        if job.kind == JobKind::Send {
            if rr.len < job.len {
                self.complete_sender_err(t, &job, WcStatus::RemoteAccessError);
                self.recycle_payload(payload);
                return Ok(());
            }
            if let Some(payload) = &payload {
                let n = self.nodes.get_mut(dst.index()).ok_or_else(|| {
                    FabricError::InternalInconsistency(format!(
                        "destination node {dst} vanished during delivery"
                    ))
                })?;
                let pd = n.qps.get(&job.dst_qp).map(|q| q.pd);
                if let Ok(mem) = n.tpt.check(rr.lkey, rr.gpa, job.len, Need::LocalWrite, pd) {
                    // Landing buffers are registered, hence pinned.
                    let _ = mem.dma_write(rr.gpa, payload);
                }
            }
        }
        let n = self.nodes.get_mut(dst.index()).ok_or_else(|| {
            FabricError::InternalInconsistency(format!(
                "destination node {dst} vanished during delivery"
            ))
        })?;
        let (recv_cq, counter) = match n.qps.get_mut(&job.dst_qp) {
            Some(qp) => (qp.recv_cq, qp.next_rq_counter()),
            None => return Ok(()),
        };
        let cqe = Cqe {
            wr_id: rr.wr_id,
            qp_num: job.dst_qp,
            byte_len: job.len,
            wqe_counter: counter,
            opcode: Opcode::Recv,
            status: WcStatus::Success,
            imm_data: imm.unwrap_or(0),
        };
        Self::push_cqe(n, job.dst_qp, recv_cq, cqe);
        self.outputs.push((
            t,
            FabricEvent::RecvComplete {
                node: dst,
                qp: job.dst_qp,
                wr_id: rr.wr_id,
                byte_len: job.len,
                imm,
            },
        ));
        self.schedule_sender_success(t, &job, job.len);
        self.recycle_payload(payload);
        Ok(())
    }

    /// An arriving two-sided message found no posted receive: RNR NAK.
    /// The sender backs off exponentially (`rnr_timer << (attempt-1)`) and
    /// retransmits; once the budget is exhausted the message is dropped,
    /// the sender completes with `RnrRetryExceeded`, and its QP errors —
    /// real RC semantics replacing the old silent one-shot drop.
    fn on_rnr_nak(&mut self, t: SimTime, mut job: EgressJob) -> Result<(), FabricError> {
        let dst = job.dst_node;
        if job.rnr_attempt < self.cfg.rnr_retry_count {
            job.rnr_attempt += 1;
            job.sent = 0;
            let shift = (job.rnr_attempt - 1).min(MAX_BACKOFF_SHIFT);
            let wait = SimDuration::from_nanos(
                self.cfg.rnr_timer.as_nanos().saturating_mul(1u64 << shift),
            );
            if let Some(n) = self.nodes.get_mut(job.src_node.index()) {
                if let Some(qp) = n.qps.get_mut(&job.qp) {
                    qp.counters.rnr_retries += 1;
                }
            }
            if self.tracer.enabled() {
                self.tracer.instant(
                    t,
                    subsystem::FABRIC_ENGINE,
                    "rnr_backoff",
                    Scope::Qp(job.qp.raw()),
                    vec![
                        ("attempt", job.rnr_attempt.into()),
                        ("wait_ns", wait.as_nanos().into()),
                    ],
                );
            }
            self.agenda.schedule_at(t + wait, Timer::Retransmit { job });
            return Ok(());
        }
        if self.recovery {
            // The receiver gave up on this delivery attempt, but nothing is
            // dropped (so no RnrDrop event, no drop counters): the CM keeps
            // the message, journaling it on the sender and reconnecting, by
            // which time the platform has had a chance to replenish the
            // starved receive queue.
            self.fail_qp_with_journal(t, job);
            return Ok(());
        }
        let n = self.nodes.get_mut(dst.index()).ok_or_else(|| {
            FabricError::InternalInconsistency(format!(
                "destination node {dst} vanished during RNR handling"
            ))
        })?;
        n.counters.rnr_drops += 1;
        if let Some(qp) = n.qps.get_mut(&job.dst_qp) {
            qp.counters.rnr_drops += 1;
        }
        self.outputs.push((
            t,
            FabricEvent::RnrDrop {
                node: dst,
                qp: job.dst_qp,
            },
        ));
        self.complete_sender_err(t, &job, WcStatus::RnrRetryExceeded);
        let _ = self.set_qp_error(job.src_node, job.qp, t);
        Ok(())
    }

    /// Validates the rkey and places RDMA-write payload at the destination.
    fn place_rdma_write(&mut self, job: &EgressJob) -> Result<(), WcStatus> {
        let n = self
            .nodes
            .get_mut(job.dst_node.index())
            .ok_or(WcStatus::RemoteAccessError)?;
        let mem = n
            .tpt
            .check(job.rkey, job.remote_gpa, job.len, Need::RemoteWrite, None)
            .map_err(|_| WcStatus::RemoteAccessError)?;
        if let Some(payload) = &job.payload {
            mem.dma_write(job.remote_gpa, payload)
                .map_err(|_| WcStatus::RemoteAccessError)?;
        }
        Ok(())
    }

    /// A read request arrived at the responder: validate and stream back.
    #[allow(clippy::too_many_arguments)]
    fn start_read_response(
        &mut self,
        t: SimTime,
        job: EgressJob,
        resp_len: u32,
        remote_gpa: Gpa,
        rkey: u32,
        local_gpa: Gpa,
        lkey: u32,
    ) -> Result<(), FabricError> {
        self.settle_node(job.dst_node, t, false);
        let responder = job.dst_node;
        let payload = {
            let n = match self.nodes.get_mut(responder.index()) {
                Some(n) => n,
                None => return Ok(()),
            };
            match n
                .tpt
                .check(rkey, remote_gpa, resp_len, Need::RemoteRead, None)
            {
                Ok(mem) => {
                    if resp_len <= self.cfg.payload_copy_threshold {
                        let mem = mem.clone();
                        let mut buf = self.pool_buf(resp_len as usize);
                        if mem.read(remote_gpa, &mut buf).is_ok() {
                            Some(buf)
                        } else {
                            self.recycle_payload(Some(buf));
                            None
                        }
                    } else {
                        None
                    }
                }
                Err(_) => {
                    self.complete_sender_err(t, &job, WcStatus::RemoteAccessError);
                    return Ok(());
                }
            }
        };
        let seq = self.job_seq;
        self.job_seq += 1;
        let resp = EgressJob {
            seq,
            src_node: responder,
            // Charge the responder-side QP: read traffic consumes the
            // responder's egress bandwidth, as on real fabrics.
            qp: job.dst_qp,
            wr_id: job.wr_id,
            opcode: Opcode::RdmaRead,
            kind: JobKind::ReadResponse {
                local_gpa,
                lkey,
                initiator_wr: job.wr_id,
                initiator_qp: job.qp,
            },
            dst_node: job.src_node,
            dst_qp: job.qp,
            len: resp_len,
            sent: 0,
            signaled: job.signaled,
            remote_gpa,
            rkey,
            imm: 0,
            payload,
            attempt: 0,
            rnr_attempt: 0,
        };
        let n = self.nodes.get_mut(responder.index()).ok_or_else(|| {
            FabricError::InternalInconsistency(format!(
                "responder node {responder} vanished while starting a read response"
            ))
        })?;
        n.arbiter.enqueue(resp);
        self.kick_link(responder, t);
        Ok(())
    }

    /// Read-response data fully arrived back at the initiator.
    fn finish_read(
        &mut self,
        t: SimTime,
        mut job: EgressJob,
        local_gpa: Gpa,
        lkey: u32,
        initiator_wr: u64,
        initiator_qp: QpNum,
    ) -> Result<(), FabricError> {
        let initiator = job.dst_node;
        let payload = job.payload.take();
        let n = match self.nodes.get_mut(initiator.index()) {
            Some(n) => n,
            None => return Ok(()),
        };
        if let Some(payload) = &payload {
            let pd = n.qps.get(&initiator_qp).map(|q| q.pd);
            if let Ok(mem) =
                n.tpt
                    .check(lkey, local_gpa, payload.len() as u32, Need::LocalWrite, pd)
            {
                let _ = mem.dma_write(local_gpa, payload);
            }
        }
        self.recycle_payload(payload);
        if job.signaled {
            self.write_send_cqe(
                t,
                initiator,
                initiator_qp,
                initiator_wr,
                Opcode::RdmaRead,
                WcStatus::Success,
                job.len,
            );
        }
        Ok(())
    }

    fn schedule_sender_success(&mut self, t: SimTime, job: &EgressJob, byte_len: u32) {
        if !job.signaled {
            return;
        }
        self.agenda.schedule_at(
            t + self.cfg.ack_latency,
            Timer::SenderComplete {
                node: job.src_node,
                qp: job.qp,
                wr_id: job.wr_id,
                opcode: job.opcode,
                byte_len,
            },
        );
    }

    fn complete_sender_err(&mut self, t: SimTime, job: &EgressJob, status: WcStatus) {
        // Errors are always reported, signaled or not, like real RC QPs.
        let (node, qp, wr_id, opcode, len) = (job.src_node, job.qp, job.wr_id, job.opcode, job.len);
        self.write_send_cqe(t, node, qp, wr_id, opcode, status, len);
    }

    #[allow(clippy::too_many_arguments)]
    fn write_send_cqe(
        &mut self,
        t: SimTime,
        node: NodeId,
        qp_num: QpNum,
        wr_id: u64,
        opcode: Opcode,
        status: WcStatus,
        byte_len: u32,
    ) {
        let n = match self.nodes.get_mut(node.index()) {
            Some(n) => n,
            None => return,
        };
        let (send_cq, counter) = match n.qps.get_mut(&qp_num) {
            Some(qp) => (qp.send_cq, qp.next_sq_counter()),
            None => return,
        };
        let cqe = Cqe {
            wr_id,
            qp_num,
            byte_len,
            wqe_counter: counter,
            opcode,
            status,
            imm_data: 0,
        };
        Self::push_cqe(n, qp_num, send_cq, cqe);
        self.outputs.push((
            t,
            FabricEvent::SendComplete {
                node,
                qp: qp_num,
                wr_id,
                opcode,
                status,
                byte_len,
            },
        ));
    }

    fn push_cqe(n: &mut Node, qp: QpNum, cq: CqNum, cqe: Cqe) {
        if let Some(q) = n.qps.get_mut(&qp) {
            q.counters.completions += 1;
        }
        if let Some(c) = n.cqs.get_mut(&cq) {
            // Overruns are counted inside the CQ; experiments size rings to
            // never hit this.
            let _ = c.push(cqe);
        }
    }
}
