//! Tier-1 tests for the vendored rayon work-stealing pool itself:
//! positional results, nesting, panic propagation, and genuine
//! multi-thread execution. (The vendor tree is excluded from the
//! workspace, so its behaviour is pinned here.)
//!
//! The whole binary forces a 4-wide pool before first use — wider than
//! this machine may be, which is fine: cross-thread stealing is exercised
//! regardless of core count.

use rayon::prelude::*;
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Forces the pool width once, before any test touches the pool. Tests
/// within one binary share the process-global pool, so every test calls
/// this first.
fn pool4() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        // Respect an explicit override (e.g. CI runs the suite at width 1
        // too); otherwise widen to 4 so stealing actually happens.
        if std::env::var("RESEX_THREADS").is_err() {
            assert!(rayon::set_num_threads(4), "pool already started");
        }
    });
}

#[test]
fn join_returns_positionally() {
    pool4();
    let (a, b) = rayon::join(|| 1 + 1, || "two");
    assert_eq!((a, b), (2, "two"));
}

#[test]
fn join_nests() {
    pool4();
    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = rayon::join(|| fib(n - 1), || fib(n - 2));
        a + b
    }
    assert_eq!(fib(16), 987);
}

#[test]
fn par_map_preserves_input_order() {
    pool4();
    let squares: Vec<u64> = (0..1000u64).into_par_iter().map(|i| i * i).collect();
    let expected: Vec<u64> = (0..1000u64).map(|i| i * i).collect();
    assert_eq!(squares, expected);
}

#[test]
fn par_map_runs_every_element_exactly_once() {
    pool4();
    let seen = Mutex::new(HashSet::new());
    let n = 257usize; // odd size: exercises uneven splits
    let out: Vec<usize> = (0..n)
        .into_par_iter()
        .map(|i| {
            assert!(seen.lock().unwrap().insert(i), "element {i} ran twice");
            i
        })
        .collect();
    assert_eq!(out.len(), n);
    assert_eq!(seen.lock().unwrap().len(), n);
}

#[test]
fn par_iter_over_slice_references() {
    pool4();
    let data = [10u32, 20, 30, 40];
    let doubled: Vec<u32> = data.par_iter().map(|&x| x * 2).collect();
    assert_eq!(doubled, vec![20, 40, 60, 80]);
}

#[test]
fn empty_and_singleton_inputs() {
    pool4();
    let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
    assert!(empty.is_empty());
    let one: Vec<u8> = vec![7u8].into_par_iter().map(|x| x + 1).collect();
    assert_eq!(one, vec![8]);
}

#[test]
fn work_actually_spreads_across_threads() {
    pool4();
    if rayon::current_num_threads() <= 1 {
        return; // explicit RESEX_THREADS=1 run: nothing to assert
    }
    let ids = Mutex::new(HashSet::new());
    let _: Vec<()> = (0..64)
        .into_par_iter()
        .map(|_| {
            ids.lock().unwrap().insert(std::thread::current().id());
            // Enough work that the caller cannot race through every
            // element before a worker wakes up.
            std::thread::sleep(std::time::Duration::from_millis(2));
        })
        .collect();
    assert!(
        ids.lock().unwrap().len() > 1,
        "64 jobs of 2 ms each never left the calling thread"
    );
}

#[test]
fn panics_propagate_to_the_caller() {
    pool4();
    let caught = std::panic::catch_unwind(|| {
        rayon::join(|| 1, || -> i32 { panic!("boom in b") });
    });
    assert!(caught.is_err(), "b's panic must surface");
    let caught = std::panic::catch_unwind(|| {
        rayon::join(|| -> i32 { panic!("boom in a") }, || 1);
    });
    assert!(caught.is_err(), "a's panic must surface");
    // The pool survives a panicked job: subsequent work still runs.
    let calls = AtomicUsize::new(0);
    let sum: Vec<u32> = (0..100u32)
        .into_par_iter()
        .map(|i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        })
        .collect();
    assert_eq!(sum.len(), 100);
    assert_eq!(calls.load(Ordering::Relaxed), 100);
}
