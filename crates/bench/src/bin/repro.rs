//! `repro` — regenerate every figure of the ResEx paper.
//!
//! ```text
//! cargo run -p resex-bench --release --bin repro -- all
//! cargo run -p resex-bench --release --bin repro -- fig7 --full
//! cargo run -p resex-bench --release --bin repro -- fig9 --json out.json
//! ```
//!
//! Targets: `fig1` … `fig9`, `ablation`, `hw_qos`, `scaling`, `rack`,
//! `all`. `--quick` (default) runs CI-scale simulations; `--full` runs
//! paper-shaped spans. `rack` runs the sharded rack-scale scenario
//! (hundreds of per-host calendars under conservative lookahead over the
//! two-tier ToR/spine topology); it is deliberately *not* part of `all`,
//! which keeps the figure suite's output and BENCH baselines unchanged. `--json PATH`
//! additionally dumps the figure data as JSON for plotting. `--trace PATH`
//! / `--metrics PATH` additionally run the representative managed
//! scenario (64KB + 2MB under FreeMarket) with observability on and write
//! a Perfetto-loadable trace / per-interval JSONL metrics. `--faults SPEC`
//! installs a deterministic fault schedule (see `resex_faults::FaultSpec`)
//! on every scenario the target runs. `--adversary SPEC` arms the
//! antagonist plane (see `resex_adversary::AdversarySpec`) on every
//! multi-VM scenario the target runs.
//!
//! `repro chaos [--budget N] [--seed S]` runs the seeded random
//! fault-schedule explorer instead of a figure: every generated schedule
//! is checked against the global invariant registry and any violation is
//! shrunk to a minimal replayable `--faults` reproducer. Exit status is
//! nonzero when a violation survives — CI runs this with a fixed seed.
//!
//! `all` computes the independent figure targets **concurrently** on the
//! work-stealing pool (each figure also fans its own sweep points out),
//! then prints every figure in the canonical order — so stdout and the
//! JSON document are byte-identical whether the pool has 1 thread
//! (`RESEX_THREADS=1`) or many. Per-target wall-clock goes to stderr.
//!
//! `repro profile [target]` (target defaults to `all`) runs the same
//! simulations under the DES self-profiler and prints a perf report
//! instead of the figures: per-event-type self-time, allocations/event,
//! events/sec, calendar shape. `--profile-json PATH` writes the
//! machine-readable `ProfileReport`; `--flame PATH` writes a
//! collapsed-stack file for flamegraph tooling. Profiling never perturbs
//! the simulation: `--json` output from a profiled run is byte-identical
//! to an unprofiled one (CI enforces this).

use rayon::prelude::*;
use resex_bench::report::{build_report, merged_profile, Provenance};
use resex_platform::experiments::{
    ablation, fig1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, hw_qos, rack, scaling, Scale,
};
use resex_platform::{run_scenario_observed, PolicyKind, ScenarioConfig};
use serde_json::{json, Value};
use std::io::Write;

/// Count heap allocations per thread so the profiler can attribute them
/// to event types. Pure delegation to the system allocator plus two
/// thread-local counter bumps; installed here (a binary decision) rather
/// than by any library.
#[global_allocator]
static ALLOC: resex_obs::alloc::CountingAlloc = resex_obs::alloc::CountingAlloc;

fn usage() -> ! {
    eprintln!(
        "usage: repro [profile] <fig1|...|fig9|ablation|hw_qos|scaling|rack|all> \
         [--quick|--full] [--duration-ms N] [--warmup-ms N] \
         [--json PATH] [--trace PATH] [--metrics PATH] [--faults SPEC] \
         [--adversary SPEC] [--profile-json PATH] [--flame PATH]\n\
       repro chaos [--budget N] [--seed S] [--duration-ms N] [--warmup-ms N]\n\
         fault SPEC: comma list of seed=N loss=P corrupt=P delay=P \
delay_us=N tear=P skip=P stale=P capfail=P flap_ms=N flap_down_us=N \
mgr_crash=P mgr_down_ms=N host_crash=P host_down_ms=N vm_crash=P vm_down_ms=N\n\
         adversary SPEC: comma list of class=<burst|freeride|poison|collude> \
seed=N attackers=I+J+.. victim=I intensity=F duty=F"
    );
    std::process::exit(2);
}

/// The run the observability flags record: the paper's canonical managed
/// contention case (64KB reporting VM vs 2MB interferer, FreeMarket).
fn observed_representative(scale: &Scale, trace_path: Option<&str>, metrics_path: Option<&str>) {
    let mut cfg = ScenarioConfig::managed(2 * 1024 * 1024, PolicyKind::FreeMarket);
    cfg.duration = scale.duration;
    cfg.warmup = scale.warmup;
    scale.stamp_faults(&mut cfg);
    scale.stamp_adversary(&mut cfg);
    cfg.obs.trace = trace_path.is_some();
    cfg.obs.metrics = metrics_path.is_some();
    let label = cfg.label.clone();
    let (run, observed) = run_scenario_observed(cfg);
    eprintln!("[observed {label}: {} events]", run.events_processed);
    if let (Some(out), Some(json)) = (trace_path, &observed.trace_json) {
        std::fs::write(out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        eprintln!("[trace -> {out}]");
    }
    if let (Some(out), Some(jsonl)) = (metrics_path, &observed.metrics_jsonl) {
        std::fs::write(out, jsonl).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
        eprintln!("[metrics -> {out}]");
    }
}

/// A computed figure: printing is deferred so `all` can compute targets
/// concurrently and still print in canonical order.
enum FigOutput {
    Fig1(fig1::Fig1Result),
    Fig2(fig2::Fig2Result),
    Fig3(fig3::Fig3Result),
    Fig4(fig4::Fig4Result),
    Fig5(fig5::Fig5Result),
    Fig6(fig6::Fig6Result),
    Fig7(fig7::Fig7Result),
    Fig8(fig8::Fig8Result),
    Fig9(fig9::Fig9Result),
    Ablation(ablation::AblationResult),
    HwQos(hw_qos::HwQosResult),
    Scaling(scaling::ScalingResult),
    Rack(rack::RackResult),
}

impl FigOutput {
    fn print(&self) {
        match self {
            FigOutput::Fig1(r) => r.print(),
            FigOutput::Fig2(r) => r.print(),
            FigOutput::Fig3(r) => r.print(),
            FigOutput::Fig4(r) => r.print(),
            FigOutput::Fig5(r) => r.print(),
            FigOutput::Fig6(r) => r.print(),
            FigOutput::Fig7(r) => r.print(),
            FigOutput::Fig8(r) => r.print(),
            FigOutput::Fig9(r) => r.print(),
            FigOutput::Ablation(r) => r.print(),
            FigOutput::HwQos(r) => r.print(),
            FigOutput::Scaling(r) => r.print(),
            FigOutput::Rack(r) => r.print(),
        }
    }

    fn json(&self, target: &str) -> Value {
        match self {
            FigOutput::Fig1(r) => json!({ target: r }),
            FigOutput::Fig2(r) => json!({ target: r }),
            FigOutput::Fig3(r) => json!({ target: r }),
            FigOutput::Fig4(r) => json!({ target: r }),
            FigOutput::Fig5(r) => json!({ target: r }),
            FigOutput::Fig6(r) => json!({ target: r }),
            FigOutput::Fig7(r) => json!({ target: r }),
            FigOutput::Fig8(r) => json!({ target: r }),
            FigOutput::Fig9(r) => json!({ target: r }),
            FigOutput::Ablation(r) => json!({ target: r }),
            FigOutput::HwQos(r) => json!({ target: r }),
            FigOutput::Scaling(r) => json!({ target: r }),
            FigOutput::Rack(r) => json!({ target: r }),
        }
    }
}

/// Runs one target's simulations without printing anything.
fn compute_target(target: &str, scale: &Scale) -> FigOutput {
    match target {
        "fig1" => FigOutput::Fig1(fig1::run(scale)),
        "fig2" => FigOutput::Fig2(fig2::run(scale)),
        "fig3" => FigOutput::Fig3(fig3::run(scale)),
        "fig4" => FigOutput::Fig4(fig4::run(scale)),
        "fig5" => FigOutput::Fig5(fig5::run(scale)),
        "fig6" => FigOutput::Fig6(fig6::run(scale)),
        "fig7" => FigOutput::Fig7(fig7::run(scale)),
        "fig8" => FigOutput::Fig8(fig8::run(scale)),
        "fig9" => FigOutput::Fig9(fig9::run(scale)),
        "ablation" => FigOutput::Ablation(ablation::run(scale)),
        "hw_qos" => FigOutput::HwQos(hw_qos::run(scale)),
        "scaling" => FigOutput::Scaling(scaling::run(scale)),
        "rack" => FigOutput::Rack(rack::run(scale)),
        _ => usage(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut target = None;
    let mut profile_mode = false;
    let mut chaos_mode = false;
    let mut chaos_cfg = resex_chaos::ChaosConfig::default();
    let mut mode = "quick";
    let mut scale = Scale::quick();
    let mut json_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut profile_json_path: Option<String> = None;
    let mut flame_path: Option<String> = None;
    let mut faults_spec: Option<String> = None;
    let mut adversary_spec: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                scale = Scale::quick();
                mode = "quick";
            }
            "--full" => {
                scale = Scale::full();
                mode = "full";
            }
            // Span overrides on top of the selected scale; mainly for the
            // determinism test suite, which wants the same sweep *shape*
            // over a shorter simulated span.
            "--duration-ms" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&ms| ms > 0)
                    .unwrap_or_else(|| usage());
                scale.duration = resex_simcore::time::SimDuration::from_millis(ms);
                scale.timeline = resex_simcore::time::SimDuration::from_millis(2 * ms);
                chaos_cfg.duration = resex_simcore::time::SimDuration::from_millis(ms);
            }
            "--warmup-ms" => {
                i += 1;
                let ms: u64 = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                scale.warmup = resex_simcore::time::SimDuration::from_millis(ms);
                chaos_cfg.warmup = resex_simcore::time::SimDuration::from_millis(ms);
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--metrics" => {
                i += 1;
                metrics_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--profile-json" => {
                i += 1;
                profile_json_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--flame" => {
                i += 1;
                flame_path = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            // Raw spec strings are collected here and validated *jointly*
            // after the loop: a composed command line with two bad specs
            // reports both problems at once instead of the first only.
            "--faults" => {
                i += 1;
                faults_spec = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--adversary" => {
                i += 1;
                adversary_spec = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--budget" => {
                i += 1;
                chaos_cfg.budget = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                chaos_cfg.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "profile" if !profile_mode && !chaos_mode && target.is_none() => profile_mode = true,
            "chaos" if !profile_mode && !chaos_mode && target.is_none() => chaos_mode = true,
            t if target.is_none() => target = Some(t.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    match resex_platform::parse_spec_combo(faults_spec.as_deref(), adversary_spec.as_deref()) {
        Ok((f, a)) => {
            scale.faults = f;
            scale.adversary = a;
        }
        Err(e) => {
            eprintln!("{e}");
            usage()
        }
    }

    // `repro chaos` runs the schedule explorer instead of a figure
    // target: deterministic for a given seed and budget, exit status 1
    // when any invariant violation survives shrinking.
    if chaos_mode {
        if target.is_some() {
            usage();
        }
        let report = resex_chaos::explore(&chaos_cfg);
        report.print();
        if !report.violations.is_empty() {
            std::process::exit(1);
        }
        return;
    }

    // `repro profile` with no explicit target profiles the whole suite.
    let target = target.unwrap_or_else(|| {
        if profile_mode {
            "all".to_string()
        } else {
            usage()
        }
    });

    let targets: Vec<&str> = if target == "all" {
        vec![
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "ablation",
            "hw_qos", "scaling",
        ]
    } else {
        vec![target.as_str()]
    };

    // Arm the global profiler *before* any world is built so every
    // simulation the targets run submits its per-thread profile. The
    // simulations themselves are untouched: profiling reads host
    // monotonic clocks outside the DES clock, so the figure data (and
    // any --json output) stays byte-identical to an unprofiled run.
    if profile_mode {
        resex_obs::profiler::set_global_enabled(true);
    }

    // Compute every target on the pool (each target also parallelizes its
    // own sweep), then print in canonical order: output is byte-identical
    // to a sequential run.
    let t_all = std::time::Instant::now();
    let computed: Vec<(&str, FigOutput, f64)> = targets
        .into_par_iter()
        .map(|t| {
            let t0 = std::time::Instant::now();
            let out = compute_target(t, &scale);
            (t, out, t0.elapsed().as_secs_f64())
        })
        .collect();
    let wall = t_all.elapsed().as_secs_f64();
    if profile_mode {
        resex_obs::profiler::set_global_enabled(false);
    }

    let mut doc = serde_json::Map::new();
    for (t, out, secs) in &computed {
        // Profile mode prints the perf report instead of the figures; the
        // figure data still lands in --json, byte-identical.
        if !profile_mode {
            out.print();
        }
        eprintln!("[{t} done in {secs:.1}s]\n");
        if let Value::Object(m) = out.json(t) {
            doc.extend(m);
        }
        if !profile_mode {
            println!();
        }
    }
    if computed.len() > 1 {
        eprintln!(
            "[{} targets in {wall:.1}s wall-clock on {} pool thread(s)]",
            computed.len(),
            rayon::current_num_threads()
        );
    }

    if let Some(path) = json_path {
        let mut f = std::fs::File::create(&path).expect("create json output");
        serde_json::to_writer_pretty(&mut f, &Value::Object(doc)).expect("write json");
        writeln!(f).ok();
        eprintln!("wrote {path}");
    }

    if profile_mode {
        let per_thread = resex_obs::profiler::drain();
        let timings: Vec<(String, f64)> = computed
            .iter()
            .map(|(t, _, secs)| (t.to_string(), *secs))
            .collect();
        let report = build_report(
            &target,
            mode,
            Provenance::capture(args.clone()),
            &per_thread,
            wall,
            &timings,
        );
        report.print();
        if let Some(path) = profile_json_path {
            let mut f = std::fs::File::create(&path).expect("create profile json output");
            serde_json::to_writer_pretty(&mut f, &report).expect("write profile json");
            writeln!(f).ok();
            eprintln!("wrote {path}");
        }
        if let Some(path) = flame_path {
            std::fs::write(&path, merged_profile(&per_thread).collapsed())
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }

    if trace_path.is_some() || metrics_path.is_some() {
        observed_representative(&scale, trace_path.as_deref(), metrics_path.as_deref());
    }
}
