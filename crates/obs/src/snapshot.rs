//! Per-interval, per-VM metric snapshots and their JSONL rendering.
//!
//! One [`IntervalSnapshot`] row is produced per VM per ResEx charging
//! interval, lining up the whole causal chain in a single record: what
//! the fabric actually moved (`egress_bytes`, `mtus_fabric`), what IBMon
//! *estimated* it moved (`mtus_ibmon`, `est_buffer_size`), what the
//! manager charged and decided (`io_charged`, `reso_balance`, `action`),
//! and what the scheduler actuated (`cap_pct`, `cpu_percent`).

use serde::Serialize;

/// One JSONL row: the state of one VM at the close of one charging
/// interval.
#[derive(Clone, Debug, Default, Serialize)]
pub struct IntervalSnapshot {
    /// Simulated time of the interval close, nanoseconds.
    pub t_ns: u64,
    /// Charging-interval ordinal (0-based).
    pub interval: u64,
    /// VM index.
    pub vm: u32,
    /// VM display name.
    pub vm_name: String,
    /// Remaining Reso balance after this interval's charges.
    pub reso_balance: f64,
    /// `reso_balance` as a fraction of the epoch allowance.
    pub remaining_fraction: f64,
    /// Congestion price multiplier applied this interval.
    pub congestion_price: f64,
    /// CPU cap actuated on the VM's domain, percent (0 = uncapped).
    pub cap_pct: u32,
    /// Bytes the fabric egress link moved for this VM this interval.
    pub egress_bytes: u64,
    /// Fabric send-queue depth (bytes) at snapshot time.
    pub queue_depth: u64,
    /// MTUs actually transferred (fabric ground truth), lifetime.
    pub mtus_fabric: u64,
    /// MTUs IBMon estimates were transferred, lifetime.
    pub mtus_ibmon: u64,
    /// IBMon's completion-queue buffer-size estimate (an EWMA, so
    /// fractional).
    pub est_buffer_size: f64,
    /// CPU utilisation charged to the VM this interval, percent.
    pub cpu_percent: f64,
    /// I/O Resos charged this interval.
    pub io_charged: f64,
    /// CPU Resos charged this interval.
    pub cpu_charged: f64,
    /// Manager policy name in force.
    pub policy: String,
    /// Manager action taken on this VM this interval (e.g. `set_cap:35`,
    /// `none`).
    pub action: String,
    /// Requests checked against the VM's SLO this interval (0 when the VM
    /// has no SLO threshold configured).
    pub slo_checked: u64,
    /// Of those, requests that exceeded the SLO latency threshold.
    pub slo_violations: u64,
}

/// Renders snapshots as JSON Lines: one compact JSON object per row,
/// `\n`-terminated, in input order. Field order is the struct order, so
/// output is byte-deterministic.
pub fn to_jsonl(rows: &[IntervalSnapshot]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&serde_json::to_string(row).expect("snapshot export cannot fail"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_is_one_object_per_line() {
        let rows = vec![
            IntervalSnapshot {
                t_ns: 1_000_000,
                interval: 0,
                vm: 0,
                vm_name: "vm0".into(),
                reso_balance: 900.5,
                remaining_fraction: 0.9,
                ..Default::default()
            },
            IntervalSnapshot {
                t_ns: 2_000_000,
                interval: 1,
                vm: 0,
                vm_name: "vm0".into(),
                ..Default::default()
            },
        ];
        let jsonl = to_jsonl(&rows);
        let lines: Vec<&str> = jsonl.trim_end().split('\n').collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v.get("t_ns").is_some());
            assert!(v.get("reso_balance").is_some());
        }
        assert!(lines[0].contains("\"reso_balance\":900.5"));
    }
}
