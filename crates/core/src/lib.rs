#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # resex-core — the ResourceExchange (ResEx) resource manager
//!
//! The paper's contribution: a dom0 resource manager for virtualized
//! RDMA platforms that cannot see — let alone throttle — VMM-bypass I/O
//! directly. ResEx:
//!
//! 1. unifies CPU and InfiniBand usage under one currency, the **Reso**
//!    ([`resos`], [`account`]): 100,000 CPU Resos per VM per 1 s epoch, and
//!    the link's 1,048,576 MTUs/s shared as an I/O pool;
//! 2. charges each VM every 1 ms interval for the MTUs (IBMon estimate)
//!    and CPU percent (XenStat) it consumed, at policy-controlled rates;
//! 3. actuates exclusively through the Xen credit scheduler's **CPU cap**
//!    — the only knob that reaches bypass I/O.
//!
//! Two pricing policies from the paper ([`FreeMarket`] — maximize
//! utilization, Algorithm 1; [`IoShares`] — lower latency variation via
//! congestion pricing, Algorithm 2) plus two extension baselines
//! ([`StaticReserve`], [`BufferRatio`]) plug into the [`PricingPolicy`]
//! trait; [`ResExManager`] is the mechanism that runs them.

pub mod account;
pub mod config;
pub mod freemarket;
pub mod ioshares;
pub mod journal;
pub mod manager;
pub mod policy_ext;
pub mod pricing;
pub mod resos;

pub use account::ResoAccount;
pub use config::{DepletionMode, ResExConfig};
pub use freemarket::FreeMarket;
pub use ioshares::{IoShares, SlaTarget};
pub use journal::{DecisionJournal, IntervalEntry, JournalRecord};
pub use manager::{IntervalOutcome, ManagerAction, ResExManager, VmCharge};
pub use policy_ext::{BufferRatio, DemandPricing, StaticReserve};
pub use pricing::{IntervalCtx, LatencyFeedback, PricingPolicy, VmId, VmSnapshot, VmVerdict};
pub use resos::Resos;
