//! Vendored offline stub of `parking_lot`: `RwLock` and `Mutex` with the
//! non-poisoning API, backed by `std::sync`. Poisoning is converted to a
//! panic on the *locking* thread, which matches parking_lot's behaviour
//! closely enough for this workspace (locks are never held across panics).

use std::sync;

/// Guard types are re-exported from std; parking_lot's guards deref the
/// same way.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write-side guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Mutex guard.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Reader-writer lock with parking_lot's non-poisoning `read`/`write`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire a read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.inner.try_read().ok()
    }

    /// Tries to acquire a write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.inner.try_write().ok()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutual-exclusion lock with parking_lot's non-poisoning `lock`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
