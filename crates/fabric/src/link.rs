//! Egress-link arbitration.
//!
//! Every node has one egress link shared by all queue pairs on that node —
//! this is exactly where the paper's interference lives: a VM streaming 2 MB
//! buffers keeps the link occupied and a collocated VM's 64 KB responses
//! queue up behind it.
//!
//! The arbiter implements the service discipline of a modern HCA:
//!
//! * **Strict priority levels** (like InfiniBand SLs/VLs): lower level
//!   numbers are always served first.
//! * **Weighted round-robin within a level**: a flow with weight *w* gets
//!   *w* consecutive grants per turn. Weight 1 everywhere is plain RR.
//! * **Per-flow token-bucket rate limits** — the hardware bandwidth caps
//!   the paper mentions as an emerging alternative to hypervisor-side
//!   control (compared against ResEx in the `hw_qos` extension experiment).
//!
//! Grants are `grant_mtus` MTUs (never spanning work requests);
//! `grant_mtus = 1` is exact per-packet arbitration, larger values trade
//! interleaving fidelity for fewer simulation events (ablated in
//! `resex-bench`).

use crate::ratelimit::TokenBucket;
use crate::types::{McGroupId, NodeId, Opcode, QpNum};
use resex_simcore::time::SimTime;
use resex_simmem::Gpa;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// What kind of transfer a job is, determining what happens on arrival.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Two-sided send: consumes a receive WQE at the destination.
    Send,
    /// One-sided write into `remote_gpa` under `rkey`.
    Write,
    /// One-sided write that also consumes a receive WQE and delivers `imm`.
    WriteImm,
    /// The (small) request packet of an RDMA read; on arrival the responder
    /// streams `resp_len` bytes back.
    ReadRequest {
        /// Bytes the responder must return.
        resp_len: u32,
        /// Remote address to read from.
        remote_gpa: Gpa,
        /// Remote key authorizing the read.
        rkey: u32,
        /// Initiator-side landing buffer.
        local_gpa: Gpa,
        /// Initiator-side local key (already validated at post time).
        lkey: u32,
    },
    /// Unreliable datagram to `dst_node`/`dst_qp`: no acknowledgement,
    /// silent drop at a not-ready receiver.
    UdSend,
    /// Unreliable datagram replicated by the switch to every member of a
    /// multicast group (serialized once on the sender's egress).
    McastSend {
        /// The target group.
        group: McGroupId,
    },
    /// Read-response data flowing responder → initiator.
    ReadResponse {
        /// Initiator-side landing buffer.
        local_gpa: Gpa,
        /// Initiator-side local key covering the landing buffer.
        lkey: u32,
        /// Initiator's original work-request cookie.
        initiator_wr: u64,
        /// Initiator's queue pair.
        initiator_qp: QpNum,
    },
}

/// One transfer queued on (or in flight through) an egress link.
#[derive(Clone, Debug)]
pub struct EgressJob {
    /// Globally unique job number (keys partial-arrival tracking).
    pub seq: u64,
    /// Sending node.
    pub src_node: NodeId,
    /// Sending queue pair (the arbitration flow key).
    pub qp: QpNum,
    /// Originating work-request cookie.
    pub wr_id: u64,
    /// Verbs opcode (echoed in the sender completion).
    pub opcode: Opcode,
    /// Transfer kind.
    pub kind: JobKind,
    /// Destination node.
    pub dst_node: NodeId,
    /// Destination queue pair.
    pub dst_qp: QpNum,
    /// Total transfer length in bytes.
    pub len: u32,
    /// Bytes granted so far.
    pub sent: u32,
    /// Whether the sender wants a completion.
    pub signaled: bool,
    /// Remote address for writes.
    pub remote_gpa: Gpa,
    /// Remote key for writes.
    pub rkey: u32,
    /// Immediate data for `WriteImm`.
    pub imm: u32,
    /// Payload bytes captured at post time (small transfers only).
    pub payload: Option<Vec<u8>>,
    /// Transport retransmissions so far (wire loss / corruption).
    pub attempt: u32,
    /// RNR NAK retries so far (receiver not ready on arrival).
    pub rnr_attempt: u32,
}

/// A scheduling decision: serialize `bytes` of `job` next.
#[derive(Clone, Debug)]
pub struct GrantPlan {
    /// Snapshot of the job *after* accounting this grant.
    pub job: EgressJob,
    /// Bytes in this grant.
    pub bytes: u32,
    /// MTUs in this grant (for Reso charging).
    pub mtus: u32,
    /// True if this grant completes the job.
    pub job_finished: bool,
    /// True if this is the job's first grant (incurs WQE overhead).
    pub is_first: bool,
}

/// The arbiter's answer when asked for the next grant.
#[derive(Clone, Debug)]
pub enum GrantDecision {
    /// Serialize this grant now.
    Grant(GrantPlan),
    /// Work is pending but every eligible flow is rate-limited; retry at
    /// `until`.
    Throttled {
        /// Earliest instant a throttled flow regains tokens.
        until: SimTime,
    },
    /// Nothing to send.
    Idle,
}

/// Per-flow service parameters (the HCA QoS knobs).
#[derive(Clone, Debug)]
pub struct FlowParams {
    /// Consecutive grants per turn within the flow's priority level.
    pub weight: u32,
    /// Strict priority level; lower numbers are served first (SL-style).
    pub priority: u8,
    /// Optional hardware bandwidth cap.
    pub rate_limit: Option<TokenBucket>,
}

impl Default for FlowParams {
    fn default() -> Self {
        FlowParams {
            weight: 1,
            priority: 0,
            rate_limit: None,
        }
    }
}

struct FlowState {
    queue: VecDeque<EgressJob>,
    params: FlowParams,
    turns_used: u32,
}

/// Priority + weighted round-robin egress arbiter for one node.
pub struct LinkArbiter {
    flows: HashMap<QpNum, FlowState>,
    /// Service rings, one per active priority level (ascending = first).
    rings: BTreeMap<u8, VecDeque<QpNum>>,
    pending_bytes: u64,
}

impl LinkArbiter {
    /// An empty arbiter.
    pub fn new() -> Self {
        LinkArbiter {
            flows: HashMap::new(),
            rings: BTreeMap::new(),
            pending_bytes: 0,
        }
    }

    /// Installs QoS parameters for a flow (before or during traffic).
    pub fn set_flow_params(&mut self, qp: QpNum, params: FlowParams) {
        let old_priority = self.flows.get(&qp).map(|f| f.params.priority);
        let state = self.flows.entry(qp).or_insert_with(|| FlowState {
            queue: VecDeque::new(),
            params: FlowParams::default(),
            turns_used: 0,
        });
        let queued = !state.queue.is_empty();
        let new_priority = params.priority;
        state.params = params;
        state.turns_used = 0;
        // Move between service rings if the level changed mid-traffic.
        if queued {
            if let Some(old) = old_priority {
                if old != new_priority {
                    if let Some(ring) = self.rings.get_mut(&old) {
                        ring.retain(|&q| q != qp);
                    }
                    self.rings.entry(new_priority).or_default().push_back(qp);
                }
            }
        }
    }

    /// Queues a job. Returns true if the arbiter held no work at all (the
    /// caller should start the link).
    pub fn enqueue(&mut self, job: EgressJob) -> bool {
        let was_idle = self.pending_bytes == 0 && !self.has_work();
        self.pending_bytes += (job.len - job.sent) as u64;
        let qp = job.qp;
        let state = self.flows.entry(qp).or_insert_with(|| FlowState {
            queue: VecDeque::new(),
            params: FlowParams::default(),
            turns_used: 0,
        });
        let newly_active = state.queue.is_empty();
        let priority = state.params.priority;
        state.queue.push_back(job);
        if newly_active {
            self.rings.entry(priority).or_default().push_back(qp);
        }
        was_idle
    }

    /// Plans the next grant at time `now`.
    ///
    /// `grant_bytes_max` is the grant size in bytes (grant MTUs × MTU
    /// size); `mtu` is the MTU size for packet accounting.
    pub fn next_grant(&mut self, grant_bytes_max: u32, mtu: u32, now: SimTime) -> GrantDecision {
        let mut earliest: Option<SimTime> = None;
        // Allocation-free walk of the priority levels in ascending order.
        // Levels are never removed from `rings`, so re-querying the map
        // after mutating a ring is stable — no snapshot needed.
        let mut cursor: Option<u8> = None;
        loop {
            let level = match cursor {
                None => self.rings.keys().next().copied(),
                Some(prev) => self
                    .rings
                    .range((std::ops::Bound::Excluded(prev), std::ops::Bound::Unbounded))
                    .next()
                    .map(|(&k, _)| k),
            };
            let level = match level {
                Some(l) => l,
                None => break,
            };
            cursor = Some(level);
            let ring_len = self.rings.get(&level).map_or(0, |r| r.len());
            for _ in 0..ring_len {
                let qp = match self.rings.get_mut(&level).and_then(|r| r.pop_front()) {
                    Some(qp) => qp,
                    None => break,
                };
                let flow = self.flows.get_mut(&qp).expect("ring entries have flows");
                if flow.queue.is_empty() {
                    // Stale entry; drop it.
                    continue;
                }
                let remaining = {
                    let job = flow.queue.front().expect("non-empty");
                    job.len - job.sent
                };
                let bytes = remaining.min(grant_bytes_max);
                // Rate limiting: a grant costs its bytes (zero-length
                // messages cost one MTU of tokens — packets aren't free).
                // The cost is clamped to the bucket capacity so a bucket
                // smaller than one grant still drains at its rate instead
                // of deadlocking.
                let cost = bytes.max(mtu.min(grant_bytes_max)).max(1) as u64;
                if let Some(bucket) = &mut flow.params.rate_limit {
                    let cost = cost.min(bucket.capacity());
                    if !bucket.try_consume(cost, now) {
                        let t = bucket.next_available(cost, now);
                        earliest = Some(earliest.map_or(t, |e| e.min(t)));
                        self.rings
                            .get_mut(&level)
                            .expect("level exists")
                            .push_back(qp);
                        continue;
                    }
                }
                // Serve the grant.
                let job = flow.queue.front_mut().expect("non-empty");
                let is_first = job.sent == 0;
                job.sent += bytes;
                let job_finished = job.sent >= job.len;
                let mtus = if bytes == 0 { 1 } else { bytes.div_ceil(mtu) };
                self.pending_bytes -= bytes as u64;
                flow.turns_used += 1;
                let rotate = flow.turns_used >= flow.params.weight;
                if rotate {
                    flow.turns_used = 0;
                }
                let plan_job = if job_finished {
                    let done = flow.queue.pop_front().expect("job present");
                    if !flow.queue.is_empty() {
                        let ring = self.rings.get_mut(&level).expect("level exists");
                        if rotate {
                            ring.push_back(qp);
                        } else {
                            ring.push_front(qp);
                        }
                    }
                    done
                } else {
                    let snapshot = job.clone();
                    let ring = self.rings.get_mut(&level).expect("level exists");
                    if rotate {
                        ring.push_back(qp);
                    } else {
                        ring.push_front(qp);
                    }
                    snapshot
                };
                return GrantDecision::Grant(GrantPlan {
                    job: plan_job,
                    bytes,
                    mtus,
                    job_finished,
                    is_first,
                });
            }
        }
        match earliest {
            Some(until) => GrantDecision::Throttled { until },
            None => GrantDecision::Idle,
        }
    }

    /// True if any job is queued.
    pub fn has_work(&self) -> bool {
        self.flows.values().any(|f| !f.queue.is_empty())
    }

    /// Bytes not yet granted across all queues.
    pub fn pending_bytes(&self) -> u64 {
        self.pending_bytes
    }

    /// Number of queue pairs with queued work.
    pub fn active_flows(&self) -> usize {
        self.flows.values().filter(|f| !f.queue.is_empty()).count()
    }

    /// The single queue pair with queued work, when exactly one flow is
    /// active and it carries no rate limit. The batched serialization fast
    /// path keys on this: with one unlimited flow every future grant is
    /// fully determined, so the per-chunk events can be replayed lazily.
    pub fn sole_unlimited_flow(&self) -> Option<QpNum> {
        let mut found: Option<QpNum> = None;
        for (&qp, f) in &self.flows {
            if f.queue.is_empty() {
                continue;
            }
            if found.is_some() || f.params.rate_limit.is_some() {
                return None;
            }
            found = Some(qp);
        }
        found
    }

    /// Removes and returns every queued job of `qp` (ERROR-state flush).
    ///
    /// Ring entries are left in place; `next_grant` already drops entries
    /// whose flow queue is empty, so they age out lazily.
    pub fn purge_qp(&mut self, qp: QpNum) -> Vec<EgressJob> {
        let Some(flow) = self.flows.get_mut(&qp) else {
            return Vec::new();
        };
        let purged: Vec<EgressJob> = flow.queue.drain(..).collect();
        for job in &purged {
            self.pending_bytes -= (job.len - job.sent) as u64;
        }
        flow.turns_used = 0;
        purged
    }
}

impl Default for LinkArbiter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seq: u64, qp: u32, len: u32) -> EgressJob {
        EgressJob {
            seq,
            src_node: NodeId::new(0),
            qp: QpNum::new(qp),
            wr_id: seq,
            opcode: Opcode::Send,
            kind: JobKind::Send,
            dst_node: NodeId::new(1),
            dst_qp: QpNum::new(0),
            len,
            sent: 0,
            signaled: true,
            remote_gpa: Gpa::new(0),
            rkey: 0,
            imm: 0,
            payload: None,
            attempt: 0,
            rnr_attempt: 0,
        }
    }

    const GRANT: u32 = 16 * 1024; // 16 MTUs of 1 KiB
    const MTU: u32 = 1024;

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    fn grant(a: &mut LinkArbiter, now: SimTime) -> Option<GrantPlan> {
        match a.next_grant(GRANT, MTU, now) {
            GrantDecision::Grant(g) => Some(g),
            _ => None,
        }
    }

    #[test]
    fn idle_detection() {
        let mut a = LinkArbiter::new();
        assert!(a.enqueue(job(1, 0, 1000)), "first job finds the link idle");
        assert!(!a.enqueue(job(2, 0, 1000)), "second job queues behind");
    }

    #[test]
    fn single_job_grants_to_completion() {
        let mut a = LinkArbiter::new();
        a.enqueue(job(1, 0, 40 * 1024));
        let g1 = grant(&mut a, t0()).unwrap();
        assert_eq!(g1.bytes, GRANT);
        assert!(g1.is_first);
        assert!(!g1.job_finished);
        let g2 = grant(&mut a, t0()).unwrap();
        assert!(!g2.is_first);
        let g3 = grant(&mut a, t0()).unwrap();
        assert_eq!(g3.bytes, 8 * 1024, "final partial grant");
        assert!(g3.job_finished);
        assert!(grant(&mut a, t0()).is_none());
        assert_eq!(a.pending_bytes(), 0);
    }

    #[test]
    fn round_robin_interleaves_flows() {
        let mut a = LinkArbiter::new();
        a.enqueue(job(1, 0, 64 * 1024));
        a.enqueue(job(2, 1, 64 * 1024));
        let order: Vec<u32> = (0..8)
            .map(|_| grant(&mut a, t0()).unwrap().job.qp.raw())
            .collect();
        assert_eq!(order, vec![0, 1, 0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn small_flow_is_not_starved_by_big_flow() {
        let mut a = LinkArbiter::new();
        a.enqueue(job(1, 0, 2 * 1024 * 1024)); // 2 MB interferer
        a.enqueue(job(2, 1, 64 * 1024)); // 64 KB latency-sensitive
        let mut small_done_at = None;
        for i in 0..8 {
            let g = grant(&mut a, t0()).unwrap();
            if g.job.qp == QpNum::new(1) && g.job_finished {
                small_done_at = Some(i);
            }
        }
        assert_eq!(
            small_done_at,
            Some(7),
            "finished at the 8th grant (4 of its own)"
        );
    }

    #[test]
    fn fifo_within_a_flow() {
        let mut a = LinkArbiter::new();
        a.enqueue(job(1, 0, 1024));
        a.enqueue(job(2, 0, 1024));
        let g1 = grant(&mut a, t0()).unwrap();
        assert_eq!(g1.job.seq, 1);
        assert!(g1.job_finished);
        let g2 = grant(&mut a, t0()).unwrap();
        assert_eq!(g2.job.seq, 2);
    }

    #[test]
    fn mtu_accounting_sums_to_message_mtus() {
        let mut a = LinkArbiter::new();
        let len = 100 * 1024 + 17;
        a.enqueue(job(1, 0, len));
        let mut mtus = 0;
        while let Some(g) = grant(&mut a, t0()) {
            mtus += g.mtus;
        }
        assert_eq!(mtus, len.div_ceil(MTU));
    }

    #[test]
    fn zero_length_message_occupies_one_packet() {
        let mut a = LinkArbiter::new();
        a.enqueue(job(1, 0, 0));
        let g = grant(&mut a, t0()).unwrap();
        assert_eq!(g.bytes, 0);
        assert_eq!(g.mtus, 1);
        assert!(g.job_finished);
    }

    #[test]
    fn byte_conservation() {
        let mut a = LinkArbiter::new();
        let lens = [5u32, 1024, 16 * 1024, 100 * 1024, 1];
        let total: u64 = lens.iter().map(|&l| l as u64).sum();
        for (i, &l) in lens.iter().enumerate() {
            a.enqueue(job(i as u64, i as u32 % 3, l));
        }
        assert_eq!(a.pending_bytes(), total);
        let mut granted = 0u64;
        while let Some(g) = grant(&mut a, t0()) {
            granted += g.bytes as u64;
        }
        assert_eq!(granted, total);
        assert!(!a.has_work());
    }

    #[test]
    fn active_flows_counts_queues() {
        let mut a = LinkArbiter::new();
        a.enqueue(job(1, 0, 1024));
        a.enqueue(job(2, 1, 1024));
        a.enqueue(job(3, 1, 1024));
        assert_eq!(a.active_flows(), 2);
        grant(&mut a, t0()).unwrap();
        assert_eq!(a.active_flows(), 1);
    }

    #[test]
    fn purge_qp_flushes_queue_and_accounting() {
        let mut a = LinkArbiter::new();
        a.enqueue(job(1, 0, 40 * 1024));
        a.enqueue(job(2, 0, 1024));
        a.enqueue(job(3, 1, 2048));
        // Partially serve the first job so purge must account `sent`.
        let g = grant(&mut a, t0()).unwrap();
        assert!(!g.job_finished);
        let purged = a.purge_qp(QpNum::new(0));
        assert_eq!(purged.len(), 2);
        assert_eq!(purged[0].sent, GRANT);
        assert_eq!(a.pending_bytes(), 2048, "only qp 1's job remains");
        assert_eq!(a.active_flows(), 1);
        // The stale ring entry for qp 0 is skipped; qp 1 is served next.
        let g = grant(&mut a, t0()).unwrap();
        assert_eq!(g.job.qp, QpNum::new(1));
        assert!(grant(&mut a, t0()).is_none());
        assert!(
            a.purge_qp(QpNum::new(9)).is_empty(),
            "unknown flow is a no-op"
        );
    }

    // ----- QoS: priorities, weights, rate limits -------------------------

    #[test]
    fn strict_priority_preempts_between_grants() {
        let mut a = LinkArbiter::new();
        a.set_flow_params(
            QpNum::new(0),
            FlowParams {
                priority: 1,
                ..Default::default()
            },
        );
        a.set_flow_params(
            QpNum::new(1),
            FlowParams {
                priority: 0,
                ..Default::default()
            },
        );
        a.enqueue(job(1, 0, 64 * 1024)); // low priority, first in
        a.enqueue(job(2, 1, 32 * 1024)); // high priority
        let order: Vec<u32> = (0..6)
            .map(|_| grant(&mut a, t0()).unwrap().job.qp.raw())
            .collect();
        // High-priority flow (qp 1, 2 grants) drains first.
        assert_eq!(order, vec![1, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn weights_give_proportional_grants() {
        let mut a = LinkArbiter::new();
        a.set_flow_params(
            QpNum::new(0),
            FlowParams {
                weight: 3,
                ..Default::default()
            },
        );
        a.set_flow_params(
            QpNum::new(1),
            FlowParams {
                weight: 1,
                ..Default::default()
            },
        );
        a.enqueue(job(1, 0, 1024 * 1024));
        a.enqueue(job(2, 1, 1024 * 1024));
        let order: Vec<u32> = (0..8)
            .map(|_| grant(&mut a, t0()).unwrap().job.qp.raw())
            .collect();
        assert_eq!(order, vec![0, 0, 0, 1, 0, 0, 0, 1], "3:1 weighted service");
    }

    #[test]
    fn rate_limited_flow_throttles_and_recovers() {
        let mut a = LinkArbiter::new();
        // 16 KiB/s with a 16 KiB burst: exactly one grant per second.
        a.set_flow_params(
            QpNum::new(0),
            FlowParams {
                rate_limit: Some(TokenBucket::new(16 * 1024, 16 * 1024)),
                ..Default::default()
            },
        );
        a.enqueue(job(1, 0, 48 * 1024));
        let g = grant(&mut a, t0()).unwrap();
        assert_eq!(g.bytes, GRANT);
        // Bucket empty: throttled with a precise retry time.
        match a.next_grant(GRANT, MTU, t0()) {
            GrantDecision::Throttled { until } => {
                assert_eq!(until, SimTime::from_secs(1));
            }
            other => panic!("expected throttle, got {other:?}"),
        }
        // At the retry time the grant goes through.
        let g = grant(&mut a, SimTime::from_secs(1)).unwrap();
        assert_eq!(g.bytes, GRANT);
    }

    #[test]
    fn unlimited_flow_proceeds_while_limited_flow_waits() {
        let mut a = LinkArbiter::new();
        // One full grant of burst, then a trickle refill.
        a.set_flow_params(
            QpNum::new(0),
            FlowParams {
                rate_limit: Some(TokenBucket::new(1024, GRANT as u64)),
                ..Default::default()
            },
        );
        a.enqueue(job(1, 0, 64 * 1024)); // limited
        a.enqueue(job(2, 1, 64 * 1024)); // unlimited
                                         // The limited flow spends its burst on the first grant; afterwards
                                         // only the unlimited flow is served (work conservation: the link
                                         // never reports Throttled while qp 1 has data).
        let mut qps = Vec::new();
        for _ in 0..5 {
            qps.push(grant(&mut a, t0()).unwrap().job.qp.raw());
        }
        assert_eq!(qps[0], 0, "burst lets the limited flow start");
        assert!(
            qps[1..].iter().all(|&q| q == 1),
            "limited flow stands aside: {qps:?}"
        );
    }

    #[test]
    fn priority_change_mid_traffic_moves_the_flow() {
        let mut a = LinkArbiter::new();
        a.enqueue(job(1, 0, 64 * 1024));
        a.enqueue(job(2, 1, 64 * 1024));
        // Demote qp 0 while it is queued.
        a.set_flow_params(
            QpNum::new(0),
            FlowParams {
                priority: 2,
                ..Default::default()
            },
        );
        let order: Vec<u32> = (0..8)
            .map(|_| grant(&mut a, t0()).unwrap().job.qp.raw())
            .collect();
        assert_eq!(order, vec![1, 1, 1, 1, 0, 0, 0, 0]);
    }

    #[test]
    fn all_flows_throttled_reports_earliest_retry() {
        let mut a = LinkArbiter::new();
        a.set_flow_params(
            QpNum::new(0),
            FlowParams {
                rate_limit: Some(TokenBucket::new(1024, GRANT as u64)),
                ..Default::default()
            },
        );
        a.set_flow_params(
            QpNum::new(1),
            FlowParams {
                rate_limit: Some(TokenBucket::new(2048, GRANT as u64)),
                ..Default::default()
            },
        );
        a.enqueue(job(1, 0, 64 * 1024));
        a.enqueue(job(2, 1, 64 * 1024));
        // Drain both buckets (one burst grant each).
        let _ = grant(&mut a, t0()).unwrap();
        let _ = grant(&mut a, t0()).unwrap();
        match a.next_grant(GRANT, MTU, t0()) {
            GrantDecision::Throttled { until } => {
                // qp1 refills 16 KiB at 2 KiB/s = 8 s; qp0 at 1 KiB/s = 16 s.
                assert_eq!(until, SimTime::from_secs(8), "earliest of the two");
            }
            other => panic!("expected throttle, got {other:?}"),
        }
    }
}
