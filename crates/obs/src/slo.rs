//! Per-VM SLO-violation tracking.
//!
//! The paper's managed experiments define an SLA as a latency band around
//! the uncontended baseline; the observability layer tracks the stricter
//! operational question — how many requests exceeded a hard latency
//! threshold — both over the whole run and per charging interval, so the
//! violation *rate* can be plotted against the manager's cap decisions.
//!
//! [`SloMonitor`] is pure observation: it never feeds back into
//! scheduling, so enabling it cannot perturb a run.

/// Counts requests whose latency exceeds a fixed threshold.
#[derive(Clone, Debug)]
pub struct SloMonitor {
    threshold_ns: u64,
    total: u64,
    violations: u64,
    interval_total: u64,
    interval_violations: u64,
}

impl SloMonitor {
    /// Creates a monitor with the given latency threshold in nanoseconds.
    pub fn new(threshold_ns: u64) -> Self {
        SloMonitor {
            threshold_ns,
            total: 0,
            violations: 0,
            interval_total: 0,
            interval_violations: 0,
        }
    }

    /// The configured threshold.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Records one request latency (nanoseconds). Latencies strictly
    /// above the threshold count as violations.
    pub fn observe(&mut self, latency_ns: u64) {
        self.total += 1;
        self.interval_total += 1;
        if latency_ns > self.threshold_ns {
            self.violations += 1;
            self.interval_violations += 1;
        }
    }

    /// Closes the current interval, returning `(checked, violations)` for
    /// it and resetting the interval counters. Run totals are unaffected.
    pub fn end_interval(&mut self) -> (u64, u64) {
        let out = (self.interval_total, self.interval_violations);
        self.interval_total = 0;
        self.interval_violations = 0;
        out
    }

    /// Whole-run `(checked, violations)` totals.
    pub fn totals(&self) -> (u64, u64) {
        (self.total, self.violations)
    }

    /// Whole-run violation fraction in `[0, 1]` (0 when nothing checked).
    pub fn violation_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.violations as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_violations_above_threshold() {
        let mut m = SloMonitor::new(1_000);
        m.observe(999);
        m.observe(1_000); // at-threshold is compliant
        m.observe(1_001);
        m.observe(50_000);
        assert_eq!(m.totals(), (4, 2));
        assert!((m.violation_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn intervals_reset_without_touching_totals() {
        let mut m = SloMonitor::new(100);
        m.observe(200);
        m.observe(50);
        assert_eq!(m.end_interval(), (2, 1));
        m.observe(200);
        assert_eq!(m.end_interval(), (1, 1));
        assert_eq!(m.end_interval(), (0, 0));
        assert_eq!(m.totals(), (3, 2));
    }

    #[test]
    fn empty_monitor_reports_zero_fraction() {
        let m = SloMonitor::new(1);
        assert_eq!(m.violation_fraction(), 0.0);
        assert_eq!(m.totals(), (0, 0));
    }
}
