//! The work-stealing thread pool behind [`crate::join`] and the parallel
//! iterators.
//!
//! Layout is the classic deque-per-worker design:
//!
//! - every worker owns a deque; it pushes and pops work at the **back**
//!   (LIFO, cache-warm), and other workers steal from the **front**
//!   (FIFO, oldest — and usually largest — subtree first);
//! - threads that are not pool workers (e.g. `main` running a sweep)
//!   submit into a shared **injector** queue and then *help*: while
//!   waiting for their own job they execute whatever other work they can
//!   find, so the caller is a full participant, never a blocked bystander.
//!
//! Everything is built on `std` (`Mutex<VecDeque>` deques, a `Condvar`
//! for sleep/wake) — no registry access, no external crates. The jobs
//! moved between threads are [`JobRef`]s: type-erased pointers into
//! [`StackJob`]s that live on the stack of the `join` caller. The unsafe
//! lifetime extension is sound because `join` never returns (and never
//! unwinds) before both jobs have finished executing, so the pointed-to
//! stack frame outlives every reference to it.
//!
//! Thread count resolution, in order: the `RESEX_THREADS` environment
//! variable (clamped to `1..=256`; `1` disables the pool and makes every
//! operation run inline on the caller), [`set_num_threads`] if it was
//! called before first use, and finally `std::thread::available_parallelism`.
//! The pool is created lazily on first use and lives for the process.
//!
//! **Determinism.** The pool introduces no observable nondeterminism:
//! `join` always returns `(a-result, b-result)` positionally and the
//! parallel iterators write results by index. Scheduling order varies
//! run to run, but no output of this crate depends on it.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// Hard upper bound on pool size (a runaway `RESEX_THREADS` should not
/// fork-bomb the host).
const MAX_THREADS: usize = 256;

// ---------------------------------------------------------------------------
// Jobs
// ---------------------------------------------------------------------------

/// A type-erased pointer to a job waiting to run. The pointee is a
/// [`StackJob`] on some `join` caller's stack; see the module docs for the
/// soundness argument.
pub(crate) struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only ever executed once, and the StackJob it points
// to is kept alive by its owning `join` frame until `done` is observed.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Runs the job. Consumes the reference; a job executes exactly once.
    unsafe fn execute(self) {
        (self.exec)(self.data)
    }
}

/// A job allocated on the caller's stack: the closure, a slot for its
/// result (or panic payload), and a completion flag the owner spins on.
pub(crate) struct StackJob<F, R> {
    f: Cell<Option<F>>,
    result: Cell<Option<thread::Result<R>>>,
    done: AtomicBool,
}

// SAFETY: the Cells are only touched by the single thread that executes
// the job (before `done` is released) or by the owner (after `done` is
// acquired); the AtomicBool orders the two.
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(f: F) -> Self {
        StackJob {
            f: Cell::new(Some(f)),
            result: Cell::new(None),
            done: AtomicBool::new(false),
        }
    }

    /// Type-erases `self`. Caller must keep `self` alive (and pinned in
    /// place) until [`Self::completed`] returns true.
    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            exec: Self::exec,
        }
    }

    unsafe fn exec(data: *const ()) {
        let this = &*(data as *const Self);
        let f = this.f.take().expect("job executed twice");
        // Capture panics so a crashing job cannot leave its owner waiting
        // forever; the owner rethrows from `into_result`.
        let result = panic::catch_unwind(AssertUnwindSafe(f));
        this.result.set(Some(result));
        this.done.store(true, Ordering::Release);
    }

    fn completed(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Takes the result after completion, re-raising the job's panic on
    /// the owner's thread.
    fn take_result(&self) -> R {
        match self.result.take().expect("job result taken twice") {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

struct Shared {
    /// Queue for work submitted by non-worker threads.
    injector: Mutex<VecDeque<JobRef>>,
    /// One deque per worker; owner pushes/pops at the back, thieves steal
    /// from the front.
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    /// Number of queued-but-not-started jobs, used for the sleep decision.
    pending: AtomicUsize,
    /// Sleep gate: workers re-check `pending` under this lock before
    /// waiting so a concurrent push can never be missed.
    sleep: Mutex<()>,
    wake: Condvar,
}

impl Shared {
    /// Pops or steals one job. `worker` is the caller's deque index, if it
    /// is a pool worker: its own deque is tried first (back, LIFO), then
    /// the injector, then the other deques (front, FIFO).
    fn find_job(&self, worker: Option<usize>) -> Option<JobRef> {
        if let Some(me) = worker {
            if let Some(job) = self.deques[me].lock().unwrap().pop_back() {
                self.pending.fetch_sub(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            self.pending.fetch_sub(1, Ordering::Relaxed);
            return Some(job);
        }
        let start = worker.map(|w| w + 1).unwrap_or(0);
        for i in 0..self.deques.len() {
            let victim = (start + i) % self.deques.len();
            if Some(victim) == worker {
                continue;
            }
            if let Some(job) = self.deques[victim].lock().unwrap().pop_front() {
                self.pending.fetch_sub(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Enqueues a job on the caller's own deque (workers) or the injector
    /// (everyone else) and wakes a sleeper.
    fn push(&self, job: JobRef, worker: Option<usize>) {
        match worker {
            Some(me) => self.deques[me].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        self.pending.fetch_add(1, Ordering::Relaxed);
        let _gate = self.sleep.lock().unwrap();
        self.wake.notify_all();
    }
}

struct Pool {
    shared: &'static Shared,
    threads: usize,
}

thread_local! {
    /// This thread's deque index, if it is a pool worker.
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

fn worker_main(shared: &'static Shared, index: usize) {
    WORKER_INDEX.with(|w| w.set(Some(index)));
    loop {
        if let Some(job) = shared.find_job(Some(index)) {
            // Job panics were already caught in StackJob::exec; nothing
            // can unwind out of execute().
            unsafe { job.execute() };
            continue;
        }
        let gate = shared.sleep.lock().unwrap();
        if shared.pending.load(Ordering::Relaxed) > 0 {
            continue; // work appeared between the miss and the lock
        }
        // Timed wait: a missed wakeup (impossible by construction, but
        // cheap to insure against) degrades to 10 ms of latency, not a
        // hang. Workers live for the process; no shutdown path needed.
        let _ = shared.wake.wait_timeout(gate, Duration::from_millis(10));
    }
}

/// Requested override, honoured only if set before the pool spins up.
static REQUESTED_THREADS: AtomicUsize = AtomicUsize::new(0);
static POOL: OnceLock<Pool> = OnceLock::new();

/// Presets the pool size (like `RESEX_THREADS`, for in-process callers such
/// as tests). Returns `false` if the pool already started, in which case
/// the call has no effect. The environment variable, when set, wins.
pub fn set_num_threads(n: usize) -> bool {
    REQUESTED_THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
    POOL.get().is_none()
}

fn resolve_threads() -> usize {
    // On a single-core host a wider pool cannot run anything in parallel;
    // the workers just preempt each other (and the deque locks become
    // contended), so a requested width > 1 turns a no-op into a slowdown.
    // Fall back to fully-sequential inline execution no matter what was
    // asked for. Multi-core hosts still honour explicit oversubscription
    // (stealing tests rely on it).
    let hw = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if hw <= 1 {
        return 1;
    }
    if let Ok(v) = std::env::var("RESEX_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n.min(MAX_THREADS);
            }
        }
    }
    match REQUESTED_THREADS.load(Ordering::Relaxed) {
        0 => hw,
        n => n,
    }
}

/// Builds the `Shared` state with `n` worker deques and leaks it to
/// `'static` (the pool lives for the process; no shutdown path).
fn leak_shared(n: usize) -> &'static Shared {
    Box::leak(Box::new(Shared {
        injector: Mutex::new(VecDeque::new()),
        deques: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
        pending: AtomicUsize::new(0),
        sleep: Mutex::new(()),
        wake: Condvar::new(),
    }))
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = resolve_threads();
        if threads <= 1 {
            // Sequential mode: no workers; join/par_iter run inline.
            return Pool {
                shared: leak_shared(0),
                threads,
            };
        }
        let shared = leak_shared(threads);
        for index in 0..threads {
            thread::Builder::new()
                .name(format!("resex-worker-{index}"))
                .spawn(move || worker_main(shared, index))
                .expect("spawn pool worker");
        }
        Pool { shared, threads }
    })
}

/// Number of worker threads the pool runs (1 means fully sequential).
pub fn current_num_threads() -> usize {
    pool().threads
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Runs `a` and `b`, potentially in parallel, returning both results
/// positionally. See [`crate::join`] for the public documentation.
pub(crate) fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let pool = pool();
    if pool.threads <= 1 {
        return (a(), b());
    }
    let shared = pool.shared;
    let me = WORKER_INDEX.with(|w| w.get());
    let job_b = StackJob::new(b);
    // SAFETY: job_b stays on this frame and we do not leave the frame —
    // not even by panic — until `completed()` is observed true.
    unsafe { shared.push(job_b.as_job_ref(), me) };

    let ra = match panic::catch_unwind(AssertUnwindSafe(a)) {
        Ok(v) => v,
        Err(payload) => {
            // `a` failed, but `b` may be running on another thread with a
            // pointer into this frame: help until it is done, then unwind.
            wait_for(&job_b, shared, me);
            panic::resume_unwind(payload);
        }
    };
    wait_for(&job_b, shared, me);
    (ra, job_b.take_result())
}

/// Waits for `job` to complete, executing other pool work in the meantime
/// (the caller may well pop `job` itself if no thief got there first).
fn wait_for<F, R>(job: &StackJob<F, R>, shared: &Shared, me: Option<usize>)
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    let mut misses = 0u32;
    while !job.completed() {
        if let Some(other) = shared.find_job(me) {
            unsafe { other.execute() };
            misses = 0;
        } else if misses < 64 {
            misses += 1;
            thread::yield_now();
        } else {
            // Our job was stolen and is still running remotely; nothing
            // else to do but wait for it without burning the CPU the
            // thief needs.
            thread::sleep(Duration::from_micros(50));
        }
    }
}
