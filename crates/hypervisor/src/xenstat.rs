//! XenStat-style CPU accounting.
//!
//! The paper: *"We use the XenStat library to interact with the Xen
//! hypervisor. This library allows us to get and set the CPU consumed by
//! the VM."* ResEx samples per-domain CPU usage once per charging interval;
//! [`XenStat`] provides exactly that: differences of the hypervisor's
//! cumulative CPU-time counters between samples, expressed as a percentage
//! of one PCPU.

use crate::domain::DomainId;
use crate::error::HvError;
use crate::hypervisor::Hypervisor;
use resex_simcore::time::{SimDuration, SimTime};
use std::collections::HashMap;

/// A sampling window over hypervisor CPU counters.
pub struct XenStat {
    last_sample: HashMap<DomainId, SimDuration>,
    last_time: Option<SimTime>,
}

/// One domain's usage during a sampling window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpuUsage {
    /// CPU time consumed during the window.
    pub time: SimDuration,
    /// Usage as a percentage of one PCPU over the window (0–100 per VCPU).
    pub percent: f64,
}

impl XenStat {
    /// Creates an un-primed sampler. The first [`XenStat::sample`] primes the
    /// baseline and reports zero usage.
    pub fn new() -> Self {
        XenStat {
            last_sample: HashMap::new(),
            last_time: None,
        }
    }

    /// Samples one domain's usage since the previous call for that domain.
    pub fn sample(
        &mut self,
        hv: &mut Hypervisor,
        dom: DomainId,
        now: SimTime,
    ) -> Result<CpuUsage, HvError> {
        let total = hv.cpu_time_used(dom, now)?;
        let prev = self.last_sample.insert(dom, total).unwrap_or(total);
        let window = match self.last_time {
            Some(t) if now > t => now.duration_since(t),
            _ => SimDuration::ZERO,
        };
        let time = total.saturating_sub(prev);
        let percent = if window.is_zero() {
            0.0
        } else {
            100.0 * time.as_secs_f64() / window.as_secs_f64()
        };
        Ok(CpuUsage { time, percent })
    }

    /// Marks the end of a sampling round (call once per interval, after
    /// sampling every domain of interest).
    pub fn end_round(&mut self, now: SimTime) {
        self.last_time = Some(now);
    }
}

impl Default for XenStat {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::SchedModel;

    #[test]
    fn percent_tracks_cap() {
        let mut hv = Hypervisor::new(SchedModel::Fluid);
        let p = hv.add_pcpu();
        let _d0 = hv.create_domain("dom0", 1 << 20, true);
        let dom = hv.create_domain("vm", 1 << 20, false);
        let v = hv.add_vcpu(dom, p, SimTime::ZERO).unwrap();
        hv.set_cap(dom, 40, SimTime::ZERO).unwrap();
        hv.set_polling(v, SimTime::ZERO).unwrap();

        let mut stat = XenStat::new();
        // Prime.
        let u0 = stat.sample(&mut hv, dom, SimTime::ZERO).unwrap();
        stat.end_round(SimTime::ZERO);
        assert_eq!(u0.percent, 0.0);
        // One 1 ms interval at cap 40.
        let t1 = SimTime::from_millis(1);
        let u1 = stat.sample(&mut hv, dom, t1).unwrap();
        stat.end_round(t1);
        assert!((u1.percent - 40.0).abs() < 0.5, "got {}", u1.percent);
        assert_eq!(u1.time, SimDuration::from_micros(400));
    }

    #[test]
    fn idle_domain_reads_zero() {
        let mut hv = Hypervisor::new(SchedModel::Fluid);
        let p = hv.add_pcpu();
        let _d0 = hv.create_domain("dom0", 1 << 20, true);
        let dom = hv.create_domain("vm", 1 << 20, false);
        let _v = hv.add_vcpu(dom, p, SimTime::ZERO).unwrap();
        let mut stat = XenStat::new();
        stat.sample(&mut hv, dom, SimTime::ZERO).unwrap();
        stat.end_round(SimTime::ZERO);
        let u = stat.sample(&mut hv, dom, SimTime::from_millis(5)).unwrap();
        assert_eq!(u.percent, 0.0);
        assert_eq!(u.time, SimDuration::ZERO);
    }

    #[test]
    fn unknown_domain_errors() {
        let mut hv = Hypervisor::new(SchedModel::Fluid);
        let mut stat = XenStat::new();
        assert!(stat
            .sample(&mut hv, DomainId::new(9), SimTime::ZERO)
            .is_err());
    }
}
