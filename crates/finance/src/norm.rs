//! The standard normal distribution.
//!
//! Black–Scholes needs Φ (the standard normal CDF) and φ (the density).
//! Φ is computed from the complementary error function using the
//! Abramowitz & Stegun 7.1.26 rational approximation refined by one step of
//! a higher-order correction — absolute error below 1.5e-7, which is far
//! inside the tolerance of any pricing use here (and covered by tests
//! against high-precision reference values).

/// The standard normal probability density function φ(x).
#[inline]
pub fn pdf(x: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * x * x).exp()
}

/// The error function erf(x), via Abramowitz & Stegun 7.1.26
/// (|error| ≤ 1.5e-7).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f64 = 0.254_829_592;
    const A2: f64 = -0.284_496_736;
    const A3: f64 = 1.421_413_741;
    const A4: f64 = -1.453_152_027;
    const A5: f64 = 1.061_405_429;
    const P: f64 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - (((((A5 * t + A4) * t) + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// The standard normal cumulative distribution function Φ(x).
#[inline]
pub fn cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdf_reference_values() {
        assert!((pdf(0.0) - 0.3989422804014327).abs() < 1e-15);
        assert!((pdf(1.0) - 0.24197072451914337).abs() < 1e-15);
        assert!((pdf(-1.0) - pdf(1.0)).abs() < 1e-15, "symmetric");
    }

    #[test]
    fn erf_reference_values() {
        // Reference values from tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (3.0, 0.9999779095),
        ];
        for (x, want) in cases {
            assert!(
                (erf(x) - want).abs() < 2e-7,
                "erf({x})={} want {want}",
                erf(x)
            );
            assert!((erf(-x) + want).abs() < 2e-7, "odd symmetry at {x}");
        }
    }

    #[test]
    fn cdf_reference_values() {
        let cases = [
            (0.0, 0.5),
            (1.0, 0.8413447461),
            (-1.0, 0.1586552539),
            (1.96, 0.9750021049),
            (-2.575, 0.0050120043),
        ];
        for (x, want) in cases {
            assert!(
                (cdf(x) - want).abs() < 2e-7,
                "cdf({x})={} want {want}",
                cdf(x)
            );
        }
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let mut prev = 0.0;
        let mut x = -6.0;
        while x <= 6.0 {
            let v = cdf(x);
            assert!((0.0..=1.0).contains(&v));
            assert!(v + 1e-12 >= prev, "monotone at {x}");
            prev = v;
            x += 0.01;
        }
    }
}
